/**
 * @file
 * Contract tests for the structured metrics export layer: the JSON
 * writer/parser round-trips, the BENCH_<figure>.json schema keys are
 * stable, and the per-run values in the artifact match the RunRecord
 * counters they were derived from.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "core/json.hh"
#include "core/metrics.hh"
#include "core/report.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::core;
using json::Value;

TEST(Json, ScalarsAndEscaping)
{
    EXPECT_EQ(Value("plain").dump(0), "\"plain\"");
    EXPECT_EQ(Value("a\"b\\c\n\t").dump(0), "\"a\\\"b\\\\c\\n\\t\"");
    EXPECT_EQ(Value(std::string(1, '\x01')).dump(0), "\"\\u0001\"");
    EXPECT_EQ(Value(true).dump(0), "true");
    EXPECT_EQ(Value().dump(0), "null");
    EXPECT_EQ(Value(3.5).dump(0), "3.5");
    // Integral numbers print without a decimal point or exponent.
    EXPECT_EQ(Value(std::uint64_t(123456789012345ull)).dump(0),
              "123456789012345");
}

TEST(Json, BuildDumpParseRoundTrip)
{
    Value doc = Value::object();
    doc.set("name", "fig, \"five\"\nseries");
    doc.set("count", std::uint64_t(42));
    doc.set("rate", 0.3333333333333333);
    doc.set("flag", false);
    doc.set("nothing", Value());
    Value arr = Value::array();
    arr.push(1.0);
    arr.push("two");
    Value inner = Value::object();
    inner.set("deep", Value::array());
    arr.push(std::move(inner));
    doc.set("items", std::move(arr));

    for (int indent : {0, 2, 4}) {
        const Value reparsed = json::parse(doc.dump(indent));
        EXPECT_TRUE(reparsed == doc) << "indent=" << indent;
    }
    EXPECT_EQ(json::parse(doc.dump()).at("name").asString(),
              "fig, \"five\"\nseries");
}

TEST(Json, ParserRejectsMalformedInput)
{
    EXPECT_THROW(json::parse(""), FatalError);
    EXPECT_THROW(json::parse("{\"a\":1,}"), FatalError);
    EXPECT_THROW(json::parse("{\"a\" 1}"), FatalError);
    EXPECT_THROW(json::parse("[1, 2] trailing"), FatalError);
    EXPECT_THROW(json::parse("\"unterminated"), FatalError);
    EXPECT_THROW(json::parse("tru"), FatalError);
    EXPECT_THROW(json::parse("1.2.3"), FatalError);
}

TEST(Json, AccessorsCheckKinds)
{
    Value obj = Value::object();
    obj.set("x", 1.0);
    EXPECT_TRUE(obj.has("x"));
    EXPECT_FALSE(obj.has("y"));
    EXPECT_THROW(obj.at("y"), FatalError);
    EXPECT_THROW(obj.asNumber(), FatalError);
    EXPECT_THROW(obj.at(std::size_t(0)), FatalError);
    Value arr = Value::array();
    EXPECT_THROW(arr.at(std::size_t(0)), FatalError);
    EXPECT_THROW(arr.set("k", 1.0), FatalError);
}

/** A RunRecord with every counter the artifact flattens. */
RunRecord
syntheticRecord()
{
    RunRecord record;
    record.app = "SW";
    record.cdp = true;
    record.verified = true;
    record.detail = "synthetic";
    record.kernelCycles = 1000;
    record.totalCycles = 1500;
    record.gpuSeconds = 0.002;
    record.cpuSeconds = 0.1;
    record.kernelInvocations = 7;
    record.pciTransactions = 3;
    record.profiledKernelCycles = 900;
    record.profiledPciCycles = 400;
    record.pciBytes = 4096;
    record.kernelsByName["sw_kernel"] = 7;

    auto &stats = record.stats;
    stats.gpuCycles = 1000;
    stats.launches = 7;
    stats.issueCycles = 600;
    stats.smCycles = 46000;
    stats.insnByKind[std::size_t(sim::OpKind::IntAlu)] = 3000;
    stats.insnByKind[std::size_t(sim::OpKind::Load)] = 1000;
    stats.memBySpace[std::size_t(sim::MemSpace::Global)] = 800;
    stats.memBySpace[std::size_t(sim::MemSpace::Shared)] = 200;
    stats.warpOcc.add(31, 64);
    stats.warpOcc.add(15, 64);
    stats.stalls.add(std::size_t(sim::StallReason::MemLatency), 300);
    stats.stalls.add(std::size_t(sim::StallReason::Idle), 100);
    stats.l1Accesses = 1000;
    stats.l1Misses = 250;
    stats.l2Accesses = 250;
    stats.l2Misses = 50;
    stats.dramServed = 50;
    stats.dramRowHits = 40;
    stats.dramPinBusy = 400;
    stats.dramActive = 500;
    stats.nocPackets = 100;
    stats.nocFlits = 400;
    stats.nocLatencySum = 2500;

    record.primarySpec.name = "sw_kernel";
    record.primarySpec.grid = {128, 1, 1};
    record.primarySpec.cta = {64, 1, 1};
    return record;
}

TEST(MetricsSink, ArtifactRoundTripMatchesRecord)
{
    const RunRecord record = syntheticRecord();
    MetricsSink sink("fig05_stalls", "tiny", 2);
    sink.addRun("fig5", record);
    Table table({"App", "MemLatency"});
    table.addRow({"SW-CDP", "75.0%"});
    sink.addSeries("Figure 5: pipeline stall breakdown", table);

    const Value doc = json::parse(sink.toJson().dump());

    EXPECT_EQ(doc.at("schema").asString(), "ggpu.bench.v1");
    EXPECT_EQ(doc.at("figure").asString(), "fig05_stalls");
    EXPECT_EQ(doc.at("provenance").at("scale").asString(), "tiny");
    EXPECT_EQ(doc.at("provenance").at("threads").asNumber(), 2.0);
    EXPECT_EQ(doc.at("provenance").at("configs").at(std::size_t(0))
                  .asString(),
              "fig5");

    ASSERT_EQ(doc.at("series").size(), 1u);
    const Value &series = doc.at("series").at(std::size_t(0));
    EXPECT_EQ(series.at("title").asString(),
              "Figure 5: pipeline stall breakdown");
    EXPECT_EQ(series.at("rows").at(std::size_t(0))
                  .at(std::size_t(0)).asString(),
              "SW-CDP");

    ASSERT_EQ(doc.at("runs").size(), 1u);
    const Value &run = doc.at("runs").at(std::size_t(0));
    EXPECT_EQ(run.at("config").asString(), "fig5");
    EXPECT_EQ(run.at("app").asString(), "SW");
    EXPECT_TRUE(run.at("cdp").asBool());
    EXPECT_EQ(run.at("label").asString(), "SW-CDP");
    EXPECT_TRUE(run.at("verified").asBool());
    EXPECT_EQ(run.at("kernel_cycles").asNumber(),
              double(record.kernelCycles));
    EXPECT_EQ(run.at("total_cycles").asNumber(),
              double(record.totalCycles));
    EXPECT_DOUBLE_EQ(run.at("ipc").asNumber(), record.stats.ipc());
    EXPECT_EQ(run.at("instructions").asNumber(),
              double(record.stats.totalInsns()));
    EXPECT_EQ(run.at("kernel_invocations").asNumber(), 7.0);
    EXPECT_EQ(run.at("pci_transactions").asNumber(), 3.0);
    EXPECT_EQ(run.at("pci_bytes").asNumber(), 4096.0);
    EXPECT_EQ(run.at("kernels_by_name").at("sw_kernel").asNumber(),
              7.0);
    EXPECT_DOUBLE_EQ(run.at("l1_miss_rate").asNumber(), 0.25);
    EXPECT_DOUBLE_EQ(run.at("l2_miss_rate").asNumber(), 0.2);
    EXPECT_DOUBLE_EQ(run.at("dram_efficiency").asNumber(), 0.8);
    EXPECT_DOUBLE_EQ(run.at("dram_utilization").asNumber(),
                     record.stats.dramUtilization());
    EXPECT_DOUBLE_EQ(run.at("noc_avg_latency").asNumber(), 25.0);

    // Breakdown keys are the simulator's canonical enum names
    // (sim::toString), matching every other textual surface.
    EXPECT_DOUBLE_EQ(run.at("stalls").at("mem-latency").asNumber(),
                     0.75);
    EXPECT_DOUBLE_EQ(run.at("stalls").at("idle").asNumber(), 0.25);
    EXPECT_DOUBLE_EQ(run.at("insn_mix").at("int").asNumber(), 0.75);
    EXPECT_DOUBLE_EQ(run.at("mem_mix").at("shared").asNumber(), 0.2);

    const Value &occ = run.at("occupancy");
    EXPECT_EQ(occ.at("counts").size(), 32u);
    EXPECT_EQ(occ.at("counts").at(std::size_t(31)).asNumber(), 64.0);
    EXPECT_EQ(occ.at("total").asNumber(), 128.0);
    EXPECT_EQ(occ.at("overflow").asNumber(), 0.0);

    const Value &launch = run.at("launch");
    EXPECT_EQ(launch.at("kernel").asString(), "sw_kernel");
    EXPECT_EQ(launch.at("grid").at(std::size_t(0)).asNumber(), 128.0);
    EXPECT_EQ(launch.at("cta").at(std::size_t(0)).asNumber(), 64.0);
}

TEST(MetricsSink, EveryRequiredKeyIsPresentAndContractIsStable)
{
    MetricsSink sink("fig99_contract", "small", 1);
    sink.addRun("base", syntheticRecord());
    const Value doc = json::parse(sink.toJson().dump());
    const Value &run = doc.at("runs").at(std::size_t(0));
    for (const auto &key : MetricsSink::requiredRunKeys())
        EXPECT_TRUE(run.has(key)) << "missing required key " << key;
    // The schema tag is a published contract: bump deliberately.
    EXPECT_STREQ(metricsSchema, "ggpu.bench.v1");
}

TEST(MetricsSink, WriteFileRoundTrip)
{
    const std::string path =
        testing::TempDir() + "/BENCH_test_artifact.json";
    MetricsSink sink("test_artifact", "tiny", 1);
    sink.addRun("base", syntheticRecord());
    sink.writeFile(path);

    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::stringstream buffer;
    buffer << is.rdbuf();
    const Value doc = json::parse(buffer.str());
    EXPECT_TRUE(doc == sink.toJson());
    std::remove(path.c_str());

    EXPECT_THROW(sink.writeFile("/nonexistent-dir/x.json"),
                 FatalError);
}

} // namespace
