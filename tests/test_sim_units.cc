/**
 * @file
 * Unit tests for the GPU-core building blocks: coalescer, trace
 * compression, occupancy calculator, warp schedulers, configuration
 * validation, and the statistics primitives.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "sim/coalescer.hh"
#include "sim/occupancy.hh"
#include "sim/scheduler.hh"
#include "sim/trace.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::sim;

// -------------------------------------------------------- coalescer

TEST(Coalescer, UnitStrideWarpIsOneTransaction)
{
    Coalescer coal(128);
    std::array<Addr, warpSize> addrs{};
    for (int lane = 0; lane < warpSize; ++lane)
        addrs[std::size_t(lane)] = 0x1000 + Addr(lane) * 4;
    std::vector<Addr> out;
    EXPECT_EQ(coal.coalesce(addrs, fullMask, 4, out), 1u);
    EXPECT_EQ(out[0], 0x1000u);
}

TEST(Coalescer, StridedAccessSplitsPerLine)
{
    Coalescer coal(128);
    std::array<Addr, warpSize> addrs{};
    for (int lane = 0; lane < warpSize; ++lane)
        addrs[std::size_t(lane)] = Addr(lane) * 128;  // line stride
    std::vector<Addr> out;
    EXPECT_EQ(coal.coalesce(addrs, fullMask, 4, out), 32u);
}

TEST(Coalescer, MaskedLanesDoNotContribute)
{
    Coalescer coal(128);
    std::array<Addr, warpSize> addrs{};
    for (int lane = 0; lane < warpSize; ++lane)
        addrs[std::size_t(lane)] = Addr(lane) * 512;
    std::vector<Addr> out;
    EXPECT_EQ(coal.coalesce(addrs, 0x3, 4, out), 2u);
}

TEST(Coalescer, StraddlingAccessTouchesTwoLines)
{
    Coalescer coal(128);
    std::array<Addr, warpSize> addrs{};
    addrs[0] = 126;  // 8-byte access crosses the 128B boundary
    std::vector<Addr> out;
    EXPECT_EQ(coal.coalesce(addrs, 0x1, 8, out), 2u);
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[1], 128u);
}

TEST(Coalescer, BroadcastIsOneTransaction)
{
    Coalescer coal(128);
    std::array<Addr, warpSize> addrs{};
    addrs.fill(0x4000);
    std::vector<Addr> out;
    EXPECT_EQ(coal.coalesce(addrs, fullMask, 4, out), 1u);
}

// ------------------------------------------------------------ trace

TEST(Trace, BackToBackAluOpsMerge)
{
    WarpTrace trace;
    TraceOp op;
    op.kind = OpKind::IntAlu;
    for (int i = 0; i < 10; ++i)
        trace.append(op);
    ASSERT_EQ(trace.ops.size(), 1u);
    EXPECT_EQ(trace.ops[0].repeat, 10);
}

TEST(Trace, DifferentMasksDoNotMerge)
{
    WarpTrace trace;
    TraceOp op;
    op.kind = OpKind::IntAlu;
    trace.append(op);
    op.mask = 0xffff;
    trace.append(op);
    EXPECT_EQ(trace.ops.size(), 2u);
}

TEST(Trace, MemoryOpsNeverMerge)
{
    WarpTrace trace;
    TraceOp op;
    op.kind = OpKind::Load;
    op.space = MemSpace::Shared;
    trace.append(op);
    trace.append(op);
    EXPECT_EQ(trace.ops.size(), 2u);
}

// -------------------------------------------------------- occupancy

LaunchSpec
specWith(std::uint32_t threads, std::uint32_t regs, std::uint32_t smem)
{
    LaunchSpec spec;
    spec.name = "probe";
    spec.grid = {1, 1, 1};
    spec.cta = {threads, 1, 1};
    spec.res.regsPerThread = regs;
    spec.res.smemPerCtaBytes = smem;
    return spec;
}

TEST(Occupancy, ThreadLimited)
{
    GpuConfig cfg;
    const Occupancy occ = computeOccupancy(cfg, specWith(256, 16, 0));
    EXPECT_EQ(occ.ctasPerCore, 1536u / 256u);
    EXPECT_EQ(occ.limiter, Occupancy::Limit::Threads);
}

TEST(Occupancy, RegisterLimited)
{
    GpuConfig cfg;
    // 128 threads x 128 regs = 16384 regs/CTA -> 4 CTAs in 64K regs.
    const Occupancy occ = computeOccupancy(cfg, specWith(128, 128, 0));
    EXPECT_EQ(occ.ctasPerCore, 4u);
    EXPECT_EQ(occ.limiter, Occupancy::Limit::Registers);
}

TEST(Occupancy, SharedMemLimited)
{
    GpuConfig cfg;
    // 16KB smem per CTA in a 100KB core -> 6 CTAs (the NW shape).
    const Occupancy occ =
        computeOccupancy(cfg, specWith(128, 28, 16 * 1024));
    EXPECT_EQ(occ.ctasPerCore, 6u);
    EXPECT_EQ(occ.limiter, Occupancy::Limit::SharedMem);
}

TEST(Occupancy, PairHmmShapeMatchesTableIII)
{
    GpuConfig cfg;
    // PairHMM: 10KB smem -> 10 CTAs/core, as in Table III.
    const Occupancy occ =
        computeOccupancy(cfg, specWith(128, 48, 10 * 1024));
    EXPECT_EQ(occ.ctasPerCore, 10u);
}

TEST(Occupancy, ImpossibleCtaIsFatal)
{
    GpuConfig cfg;
    EXPECT_THROW(computeOccupancy(cfg, specWith(128, 28, 512 * 1024)),
                 FatalError);
    EXPECT_THROW(computeOccupancy(cfg, specWith(4096, 28, 0)),
                 FatalError);
}

TEST(Occupancy, UtilizationFractionsBounded)
{
    GpuConfig cfg;
    const Occupancy occ =
        computeOccupancy(cfg, specWith(128, 64, 8 * 1024));
    EXPECT_GT(occ.registerUtilization, 0.0);
    EXPECT_LE(occ.registerUtilization, 1.0);
    EXPECT_GT(occ.sharedMemUtilization, 0.0);
    EXPECT_LE(occ.sharedMemUtilization, 1.0);
}

// -------------------------------------------------------- scheduler

TEST(Scheduler, LrrRotatesFairly)
{
    WarpScheduler sched(WarpSchedPolicy::Lrr, 8);
    std::vector<std::uint64_t> age(8, 0);
    const std::uint64_t issuable = 0b10101010;
    EXPECT_EQ(sched.pick(issuable, age), 1);
    EXPECT_EQ(sched.pick(issuable, age), 3);
    EXPECT_EQ(sched.pick(issuable, age), 5);
    EXPECT_EQ(sched.pick(issuable, age), 7);
    EXPECT_EQ(sched.pick(issuable, age), 1);  // wraps
}

TEST(Scheduler, GtoSticksToOneWarpUntilStall)
{
    WarpScheduler sched(WarpSchedPolicy::Gto, 8);
    std::vector<std::uint64_t> age{5, 1, 3, 7, 0, 2, 4, 6};
    // Oldest issuable is slot 4 (age 0); GTO should stick with it.
    EXPECT_EQ(sched.pick(0xff, age), 4);
    EXPECT_EQ(sched.pick(0xff, age), 4);
    // Slot 4 stalls: fall back to the next oldest (slot 1, age 1).
    EXPECT_EQ(sched.pick(0xff & ~(1u << 4), age), 1);
}

TEST(Scheduler, OldestAlwaysPicksMinimumAge)
{
    WarpScheduler sched(WarpSchedPolicy::Oldest, 8);
    std::vector<std::uint64_t> age{5, 1, 3, 7, 0, 2, 4, 6};
    EXPECT_EQ(sched.pick(0xff, age), 4);
    EXPECT_EQ(sched.pick(0b11, age), 1);
    EXPECT_EQ(sched.pick(0b1001, age), 0);
}

TEST(Scheduler, TwoLevelPromotesWhenActiveSetStalls)
{
    WarpScheduler sched(WarpSchedPolicy::TwoLevel, 16);
    std::vector<std::uint64_t> age(16);
    for (std::size_t i = 0; i < 16; ++i)
        age[i] = i;
    // First pick promotes the oldest into the active set.
    EXPECT_EQ(sched.pick(0xffff, age), 0);
    // Slot 0 remains active: LRR within the active set returns it.
    EXPECT_EQ(sched.pick(0x0001, age), 0);
    // Slot 0 stalls; a new warp is promoted.
    EXPECT_EQ(sched.pick(0xfffe, age), 1);
}

TEST(Scheduler, TwoLevelEvictsLeastRecentlyPromoted)
{
    WarpScheduler sched(WarpSchedPolicy::TwoLevel, 16);
    std::vector<std::uint64_t> age(16);
    for (std::size_t i = 0; i < 16; ++i)
        age[i] = i;
    // Fill the 8-entry active set in a promotion order that differs
    // from slot order (single-bit masks force each promotion).
    for (int slot : {5, 4, 3, 2, 1, 0, 6, 7})
        EXPECT_EQ(sched.pick(std::uint64_t(1) << slot, age), slot);
    // Promoting a ninth warp overflows the active set. The demotion
    // victim must be slot 5 — the least recently *promoted* member —
    // not slot 0, the lowest set bit.
    EXPECT_EQ(sched.pick(std::uint64_t(1) << 8, age), 8);
    // Slot 0 must still be active (LRR within the active set picks it
    // over promoting slot 5 afresh); the old countr_zero demotion
    // evicted slot 0 and would return 5 here.
    EXPECT_EQ(sched.pick((std::uint64_t(1) << 0) |
                             (std::uint64_t(1) << 5),
                         age),
              0);
}

TEST(Scheduler, NoIssuableWarpsReturnsMinusOne)
{
    for (auto policy : {WarpSchedPolicy::Lrr, WarpSchedPolicy::Gto,
                        WarpSchedPolicy::Oldest,
                        WarpSchedPolicy::TwoLevel}) {
        WarpScheduler sched(policy, 8);
        std::vector<std::uint64_t> age(8, 0);
        EXPECT_EQ(sched.pick(0, age), -1);
    }
}

// ------------------------------------------------------- config/stats

TEST(Config, ValidationCatchesBadGeometry)
{
    GpuConfig cfg;
    cfg.lineBytes = 100;
    EXPECT_THROW(cfg.validate(), FatalError);

    GpuConfig cfg2;
    cfg2.numCores = 0;
    EXPECT_THROW(cfg2.validate(), FatalError);

    GpuConfig cfg3;
    cfg3.maxThreadsPerCore = 1000;  // not a warp multiple
    EXPECT_THROW(cfg3.validate(), FatalError);
}

TEST(Config, DefaultsAreValid)
{
    SystemConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, ScaleCtaResourcesScalesTogether)
{
    GpuConfig cfg;
    cfg.scaleCtaResources(0.5);
    EXPECT_EQ(cfg.maxCtasPerCore, 16u);
    EXPECT_EQ(cfg.maxThreadsPerCore, 768u);
    EXPECT_EQ(cfg.registersPerCore, 32768u);
    EXPECT_EQ(cfg.sharedMemPerCoreBytes, 51200u);
    EXPECT_THROW(cfg.scaleCtaResources(0.0), FatalError);
}

TEST(Config, SweepListsMatchTableI)
{
    EXPECT_EQ(GpuConfig::ctaSweep().size(), 5u);
    EXPECT_EQ(GpuConfig::cacheSweep().size(), 6u);
    EXPECT_EQ(NocConfig::flitSweep().size(), 4u);
}

TEST(Stats, HistogramCountsAndMerges)
{
    Histogram hist(4);
    hist.add(0);
    hist.add(3, 3);
    EXPECT_EQ(hist.count(3), 3u);
    EXPECT_EQ(hist.total(), 4u);
    EXPECT_DOUBLE_EQ(hist.fraction(0), 0.25);
    EXPECT_EQ(hist.overflow(), 0u);

    Histogram other(4);
    other.add(1, 4);
    hist.merge(other);
    EXPECT_EQ(hist.total(), 8u);
    Histogram bad(3);
    EXPECT_THROW(hist.merge(bad), PanicError);
}

TEST(Stats, HistogramOutOfRangeKeysDoNotCorruptTheLastBucket)
{
    // Out-of-range keys mean a producer enum grew past the bucket
    // count. Debug builds panic at the broken call site; release
    // builds divert the samples to overflow() so the top bucket's
    // counts (and every fraction) stay trustworthy.
    Histogram hist(4);
    hist.add(3, 2);
#ifdef NDEBUG
    hist.add(4, 5);
    hist.add(99);
    EXPECT_EQ(hist.overflow(), 6u);
    EXPECT_EQ(hist.count(3), 2u);   // top bucket untouched
    EXPECT_EQ(hist.total(), 2u);    // overflow excluded from total
    EXPECT_DOUBLE_EQ(hist.fraction(3), 1.0);

    Histogram other(4);
    other.add(42, 4);
    hist.merge(other);
    EXPECT_EQ(hist.overflow(), 10u);

    hist.reset();
    EXPECT_EQ(hist.overflow(), 0u);
    EXPECT_EQ(hist.total(), 0u);
#else
    EXPECT_THROW(hist.add(4, 5), PanicError);
    EXPECT_EQ(hist.count(3), 2u);
    EXPECT_EQ(hist.overflow(), 0u);
#endif
}

TEST(Stats, StatSetAccess)
{
    StatSet set;
    set.set("ipc", 1.5);
    set.add("ipc", 0.5);
    EXPECT_DOUBLE_EQ(set.get("ipc"), 2.0);
    EXPECT_DOUBLE_EQ(set.getOr("missing", 7.0), 7.0);
    EXPECT_THROW(set.get("missing"), PanicError);
}

TEST(Stats, RatioHandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(ratio(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(1, 2), 0.5);
}

} // namespace
