/**
 * @file
 * Time-resolved profiler validation (ctest -L json):
 *
 *  - Zero perturbation: attaching a TimelineRecorder must not change
 *    the timed run's RunRecord at all (same pattern and guarantee as
 *    the kernel checker's CheckZeroPerturbation).
 *  - Conservation: summing every interval's counter deltas must
 *    reproduce the run's aggregate SimStats exactly — the timeline is
 *    a decomposition of the totals, not an approximation.
 *  - Slice bookkeeping: kernel/transfer/child slice counts must match
 *    the runtime profiler's own counts.
 *  - Artifact contract: toJson round-trips through the parser,
 *    validates, and the validator rejects corrupted documents.
 *  - Perfetto export: structural checks on the Chrome trace document.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.hh"
#include "core/json.hh"
#include "core/suite.hh"
#include "profile/perfetto.hh"
#include "profile/run_profile.hh"
#include "profile/timeline.hh"

namespace
{

using namespace ggpu;
using core::json::Value;

core::RunConfig
tinyConfig(bool cdp)
{
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    config.options.cdp = cdp;
    return config;
}

profile::ProfileRun
profiledRun(const std::string &app, bool cdp,
            profile::TimelineOptions topts = {})
{
    return profile::profileApp(app, tinyConfig(cdp), topts);
}

/** Sum one SM column across every interval row. */
std::uint64_t
sumSmColumn(const profile::Timeline &tl, std::size_t column)
{
    std::uint64_t total = 0;
    for (const auto &row : tl.intervals)
        for (const auto &cells : row.sm)
            total += cells[column];
    return total;
}

std::uint64_t
sumPartitionColumn(const profile::Timeline &tl, std::size_t column)
{
    std::uint64_t total = 0;
    for (const auto &row : tl.intervals)
        for (const auto &cells : row.partitions)
            total += cells[column];
    return total;
}

std::uint64_t
sumNocColumn(const profile::Timeline &tl, std::size_t column)
{
    std::uint64_t total = 0;
    for (const auto &row : tl.intervals)
        total += row.noc[column];
    return total;
}

std::size_t
smColumnIndex(const std::string &name)
{
    const auto &columns = profile::smColumns();
    for (std::size_t i = 0; i < columns.size(); ++i)
        if (columns[i] == name)
            return i;
    ADD_FAILURE() << "unknown SM column " << name;
    return 0;
}

} // namespace

// Attaching the profiler must not perturb the simulation: the record
// produced under an attached TimelineRecorder equals a detached run's
// record field for field, including the full SimStats.
TEST(ProfileDifferential, AttachedRunIsByteIdentical)
{
    for (const bool cdp : {false, true}) {
        const profile::ProfileRun run = profiledRun("NW", cdp);
        const core::RunRecord plain =
            core::runApp("NW", tinyConfig(cdp));

        EXPECT_TRUE(run.record.stats == plain.stats)
            << "SimStats diverge with the profiler attached (cdp="
            << cdp << ")";
        EXPECT_EQ(run.record.kernelCycles, plain.kernelCycles);
        EXPECT_EQ(run.record.totalCycles, plain.totalCycles);
        EXPECT_EQ(run.record.kernelInvocations,
                  plain.kernelInvocations);
        EXPECT_EQ(run.record.pciTransactions, plain.pciTransactions);
        EXPECT_EQ(run.record.pciBytes, plain.pciBytes);
        EXPECT_TRUE(run.record.verified);
    }
}

// The interval rows are an exact decomposition of the aggregate
// counters: summing the deltas over all windows reproduces SimStats.
TEST(ProfileTimeline, IntervalDeltasSumToAggregates)
{
    const profile::ProfileRun run = profiledRun("SW", true);
    const sim::SimStats &stats = run.record.stats;
    const profile::Timeline &tl = run.timeline;
    ASSERT_FALSE(tl.intervals.empty());

    EXPECT_EQ(sumSmColumn(tl, smColumnIndex("issue_cycles")),
              stats.issueCycles);
    EXPECT_EQ(sumSmColumn(tl, smColumnIndex("active_cycles")),
              stats.smCycles);
    EXPECT_EQ(sumSmColumn(tl, smColumnIndex("insns")),
              stats.totalInsns());
    EXPECT_EQ(sumSmColumn(tl, smColumnIndex("l1_accesses")),
              stats.l1Accesses);
    EXPECT_EQ(sumSmColumn(tl, smColumnIndex("l1_misses")),
              stats.l1Misses);

    EXPECT_EQ(sumPartitionColumn(tl, 0), stats.l2Accesses);
    EXPECT_EQ(sumPartitionColumn(tl, 1), stats.l2Misses);
    EXPECT_EQ(sumPartitionColumn(tl, 2), stats.dramServed);
    EXPECT_EQ(sumPartitionColumn(tl, 3), stats.dramRowHits);

    EXPECT_EQ(sumNocColumn(tl, 0), stats.nocPackets);
    EXPECT_EQ(sumNocColumn(tl, 1), stats.nocFlits);

    // Every per-SM stall-reason column must sum to its histogram
    // bucket.
    const auto &columns = profile::smColumns();
    for (std::size_t r = 0;
         r < std::size_t(sim::StallReason::NumReasons); ++r) {
        const std::string name =
            "stall:" + std::string(sim::toString(sim::StallReason(r)));
        const std::size_t col = smColumnIndex(name);
        ASSERT_LT(col, columns.size());
        EXPECT_EQ(sumSmColumn(tl, col), stats.stalls.count(r))
            << "stall column " << name;
    }
}

// Interval windows tile each kernel: ascending, non-overlapping, and
// bounded by the kernel slices they sample.
TEST(ProfileTimeline, IntervalsAreOrderedAndBounded)
{
    const profile::ProfileRun run = profiledRun("SW", true);
    const profile::Timeline &tl = run.timeline;
    Cycles prev_end = 0;
    for (const auto &row : tl.intervals) {
        EXPECT_LT(row.start, row.end);
        EXPECT_GE(row.start, prev_end);
        prev_end = row.end;
        EXPECT_EQ(row.sm.size(), std::size_t(tl.numCores));
        EXPECT_EQ(row.partitions.size(),
                  std::size_t(tl.numPartitions));
    }
    EXPECT_LE(prev_end, tl.endCycle);
}

// Discrete slices must agree with the runtime profiler's own counts.
TEST(ProfileTimeline, SlicesMatchProfilerCounts)
{
    const profile::ProfileRun run = profiledRun("SW", true);
    const profile::Timeline &tl = run.timeline;

    EXPECT_EQ(tl.kernels.size(), run.record.kernelInvocations);
    EXPECT_EQ(tl.transfers.size(), run.record.pciTransactions);
    std::uint64_t bytes = 0;
    for (const auto &t : tl.transfers)
        bytes += t.bytes;
    EXPECT_EQ(bytes, run.record.pciBytes);

    // CDP SW launches child grids; each must have a full lifecycle.
    ASSERT_FALSE(tl.children.empty());
    std::uint64_t spawned = 0;
    for (const auto &k : tl.kernels)
        spawned += k.childGrids;
    EXPECT_EQ(tl.children.size(), spawned);
    for (const auto &c : tl.children) {
        EXPECT_TRUE(c.dispatched);
        EXPECT_TRUE(c.completed);
        EXPECT_LE(c.enqueuedAt, c.readyAt);
        EXPECT_LE(c.readyAt, c.firstDispatchAt);
        EXPECT_LE(c.firstDispatchAt, c.doneAt);
    }
}

// CTA events are off by default and balanced when enabled.
TEST(ProfileTimeline, CtaEventsAreGatedAndBalanced)
{
    EXPECT_TRUE(profiledRun("NW", false).timeline.ctas.empty());

    profile::TimelineOptions topts;
    topts.recordCtas = true;
    const profile::ProfileRun run = profiledRun("NW", false, topts);
    const profile::Timeline &tl = run.timeline;
    ASSERT_FALSE(tl.ctas.empty());
    std::uint64_t dispatched = 0, retired = 0;
    for (const auto &e : tl.ctas)
        (e.dispatch ? dispatched : retired) += 1;
    EXPECT_EQ(dispatched, retired);
    std::uint64_t ctas = 0;
    for (const auto &k : tl.kernels)
        ctas += k.ctas;
    EXPECT_EQ(dispatched, ctas);
}

// The artifact round-trips through the strict parser unchanged and
// satisfies the shared validator.
TEST(ProfileArtifact, JsonRoundTripValidates)
{
    const profile::ProfileRun run = profiledRun("SW", true);
    const Value doc = profile::toJson(run.timeline);
    ASSERT_NO_THROW(profile::validateTimeline("timeline", doc));

    const Value reparsed = core::json::parse(doc.dump());
    EXPECT_TRUE(reparsed == doc);
    ASSERT_NO_THROW(profile::validateTimeline("timeline", reparsed));
    EXPECT_EQ(doc.at("schema").asString(), profile::timelineSchema);
}

// The validator must reject documents that violate the contract.
TEST(ProfileArtifact, ValidatorRejectsCorruptDocuments)
{
    const profile::ProfileRun run = profiledRun("NW", false);
    const Value good = profile::toJson(run.timeline);

    Value bad_schema = good;
    bad_schema.set("schema", "ggpu.bogus.v9");
    EXPECT_THROW(profile::validateTimeline("t", bad_schema),
                 FatalError);

    Value bad_clock = good;
    bad_clock.set("clock_ghz", 0.0);
    EXPECT_THROW(profile::validateTimeline("t", bad_clock),
                 FatalError);

    Value bad_geometry = good;
    Value geometry = Value::object();
    geometry.set("num_cores", 0);
    geometry.set("num_partitions", 8);
    geometry.set("line_bytes", 128);
    bad_geometry.set("geometry", std::move(geometry));
    EXPECT_THROW(profile::validateTimeline("t", bad_geometry),
                 FatalError);

    Value bad_legend = good;
    bad_legend.set("sm_columns", Value::array());
    EXPECT_THROW(profile::validateTimeline("t", bad_legend),
                 FatalError);

    // An interval whose SM matrix is the wrong shape.
    Value bad_interval = good;
    Value row = Value::object();
    row.set("start", std::uint64_t(0));
    row.set("end", std::uint64_t(1));
    row.set("sm", Value::array());
    row.set("partitions", Value::array());
    row.set("noc", Value::array());
    Value intervals = Value::array();
    intervals.push(std::move(row));
    bad_interval.set("intervals", std::move(intervals));
    EXPECT_THROW(profile::validateTimeline("t", bad_interval),
                 FatalError);
}

// Structural checks on the Perfetto/Chrome trace: metadata, complete
// slices for kernels and transfers, async pairs for CDP children, and
// counter events.
TEST(ProfileArtifact, PerfettoTraceStructure)
{
    const profile::ProfileRun run = profiledRun("SW", true);
    const Value doc = profile::toPerfettoTrace(run.timeline);
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");

    const Value &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    std::size_t meta = 0, complete = 0, async_begin = 0,
                async_end = 0, counters = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const std::string &ph = events.at(i).at("ph").asString();
        if (ph == "M")
            ++meta;
        else if (ph == "X")
            ++complete;
        else if (ph == "b")
            ++async_begin;
        else if (ph == "e")
            ++async_end;
        else if (ph == "C")
            ++counters;
    }
    EXPECT_GT(meta, 0u);
    EXPECT_EQ(complete, run.timeline.kernels.size() +
                            run.timeline.transfers.size());
    EXPECT_EQ(async_begin, run.timeline.children.size());
    EXPECT_EQ(async_end, run.timeline.children.size());
    EXPECT_GT(counters, 0u);

    // A zero clock must be rejected rather than divide.
    profile::Timeline broken = run.timeline;
    broken.coreClockGhz = 0.0;
    EXPECT_THROW(profile::toPerfettoTrace(broken), FatalError);
}
