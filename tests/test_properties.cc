/**
 * @file
 * Parameterized property sweeps: algebraic properties of the aligners
 * across scoring schemes, monotonicity of the cache/NoC models across
 * their Table I/II sweep ranges, and randomized cross-checks between
 * independent implementations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "genomics/align/banded.hh"
#include "genomics/align/nw.hh"
#include "genomics/align/sw.hh"
#include "genomics/datagen.hh"
#include "genomics/hmm/pairhmm.hh"
#include "genomics/index/fm_index.hh"
#include "mem/cache.hh"
#include "noc/network.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::genomics;

// ------------------------------------------------ scoring sweeps

struct ScoringCase
{
    int match, mismatch, gap_open, gap_extend;
};

class ScoringSweep : public ::testing::TestWithParam<ScoringCase>
{
  protected:
    Scoring
    scoring() const
    {
        Scoring s;
        s.match = GetParam().match;
        s.mismatch = GetParam().mismatch;
        s.gapOpen = GetParam().gap_open;
        s.gapExtend = GetParam().gap_extend;
        return s;
    }
};

TEST_P(ScoringSweep, NwIsSymmetric)
{
    Rng rng(101);
    for (int iter = 0; iter < 10; ++iter) {
        const std::string a = randomDna(rng, 5 + rng.below(40));
        const std::string b = randomDna(rng, 5 + rng.below(40));
        EXPECT_EQ(nwScore(a, b, scoring()), nwScore(b, a, scoring()));
    }
}

TEST_P(ScoringSweep, SwIsSymmetricInScore)
{
    Rng rng(103);
    for (int iter = 0; iter < 10; ++iter) {
        const std::string a = randomDna(rng, 5 + rng.below(40));
        const std::string b = randomDna(rng, 5 + rng.below(40));
        EXPECT_EQ(swScore(a, b, scoring()).score,
                  swScore(b, a, scoring()).score);
    }
}

TEST_P(ScoringSweep, IdenticalSequencesScorePerfectly)
{
    Rng rng(105);
    const std::string a = randomDna(rng, 30);
    const Scoring s = scoring();
    EXPECT_EQ(nwScore(a, a, s), int(a.size()) * s.match);
    EXPECT_EQ(swScore(a, a, s).score, int(a.size()) * s.match);
    EXPECT_EQ(alignAffine(a, a, s, AlignMode::Global).score,
              int(a.size()) * s.match);
}

TEST_P(ScoringSweep, AffineGlobalNeverBeatsLocal)
{
    Rng rng(107);
    for (int iter = 0; iter < 10; ++iter) {
        const std::string a = randomDna(rng, 10 + rng.below(30));
        const std::string b = randomDna(rng, 10 + rng.below(30));
        const Scoring s = scoring();
        EXPECT_LE(alignAffine(a, b, s, AlignMode::Global).score,
                  alignAffine(a, b, s, AlignMode::Local).score);
        EXPECT_LE(alignAffine(a, b, s, AlignMode::Global).score,
                  alignAffine(a, b, s, AlignMode::SemiGlobal).score);
    }
}

TEST_P(ScoringSweep, MutationNeverImprovesGlobalSelfScore)
{
    Rng rng(109);
    const std::string a = randomDna(rng, 60);
    MutationProfile profile;
    profile.substitutionRate = 0.1;
    const std::string b = mutate(rng, a, profile);
    EXPECT_LE(nwScore(a, b, scoring()), nwScore(a, a, scoring()));
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ScoringSweep,
    ::testing::Values(ScoringCase{2, -3, -5, -1},   // GASAL2 default
                      ScoringCase{1, -1, -1, -1},   // unit
                      ScoringCase{5, -4, -10, -2},  // BLAST-like
                      ScoringCase{3, -2, -4, -2}),
    [](const ::testing::TestParamInfo<ScoringCase> &param_info) {
        const auto &p = param_info.param;
        return "m" + std::to_string(p.match) + "_x" +
               std::to_string(-p.mismatch) + "_o" +
               std::to_string(-p.gap_open) + "_e" +
               std::to_string(-p.gap_extend);
    });

// ------------------------------------------------ cache monotonicity

class CacheSizeSweep
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheSizeSweep, LargerCachesNeverMissMoreOnLoopingTrace)
{
    const std::uint32_t size = GetParam();
    mem::Cache small(size, 8, 128, "small");
    mem::Cache large(size * 4, 8, 128, "large");
    Rng rng(7);
    // Loop over a working set larger than the small cache.
    const std::uint32_t lines = size / 128 * 2 + 16;
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint32_t i = 0; i < lines; ++i) {
            const Addr addr = Addr(i) * 128;
            small.access(addr, false);
            large.access(addr, false);
        }
    }
    EXPECT_LE(large.misses(), small.misses());
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheSizeSweep,
                         ::testing::Values(4096u, 16384u, 65536u,
                                           262144u));

// ------------------------------------------------ NoC monotonicity

class FlitSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(FlitSweep, WiderChannelsNeverSlower)
{
    NocConfig narrow;
    narrow.topology = NocTopology::Mesh;
    narrow.flitBytes = GetParam();
    NocConfig wide = narrow;
    wide.flitBytes = GetParam() * 2;
    noc::Network nnet(narrow, 86);
    noc::Network wnet(wide, 86);
    for (int s = 0; s < 80; s += 9) {
        EXPECT_GE(nnet.zeroLoadLatency(s, 85, 128),
                  wnet.zeroLoadLatency(s, 85, 128));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, FlitSweep,
                         ::testing::Values(8u, 16u, 32u));

// ----------------------------------------- randomized cross-checks

TEST(CrossCheck, BandedLocalConvergesToFullLocal)
{
    Rng rng(211);
    const Scoring s;
    for (int iter = 0; iter < 10; ++iter) {
        const std::string a = randomDna(rng, 20 + rng.below(20));
        const std::string b = mutate(rng, a, MutationProfile{});
        const int full = alignAffine(a, b, s, AlignMode::Local).score;
        int prev = -1;
        for (int band : {2, 4, 8, 16, 64}) {
            const int banded =
                alignAffine(a, b, s, AlignMode::KswBanded, band).score;
            EXPECT_GE(banded, prev);  // widening never hurts
            EXPECT_LE(banded, full);
            prev = banded;
        }
        EXPECT_EQ(prev, full);  // band 64 >> |len diff|
    }
}

TEST(CrossCheck, FmIndexCountsMatchBruteForceAcrossLengths)
{
    Rng rng(223);
    const std::string text = randomDna(rng, 800);
    const FmIndex index(text);
    for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
        for (int iter = 0; iter < 5; ++iter) {
            const std::string pattern = randomDna(rng, k);
            std::uint32_t expected = 0;
            for (std::size_t i = 0; i + k <= text.size(); ++i)
                expected += text.compare(i, k, pattern) == 0;
            EXPECT_EQ(index.search(pattern).count(), expected)
                << "k=" << k << " pattern=" << pattern;
        }
    }
}

TEST(CrossCheck, PairHmmSumsToOneOverAllReads)
{
    // For a fixed haplotype, summing P(read | hap) over every possible
    // 2-base read must be <= 1 (the HMM emits a distribution over
    // reads of that length, minus paths that end early).
    const std::string hap = "ACGTACG";
    PairHmmParams params;
    double total = 0.0;
    const char bases[] = {'A', 'C', 'G', 'T'};
    for (char b1 : bases) {
        for (char b2 : bases) {
            const std::string read{b1, b2};
            total += std::pow(10.0, pairHmmForward(read, "", hap,
                                                   params));
        }
    }
    EXPECT_LE(total, 1.0 + 1e-9);
    EXPECT_GT(total, 0.5);  // most mass is on length-2 emissions
}

TEST(CrossCheck, PairHmmPrefersTrueHaplotype)
{
    Rng rng(227);
    for (int iter = 0; iter < 10; ++iter) {
        const std::string hap_a = randomDna(rng, 60);
        std::string hap_b = hap_a;
        // Introduce a small variant into hap_b.
        hap_b[30] = hap_b[30] == 'A' ? 'C' : 'A';
        const std::string read = hap_a.substr(20, 20);
        EXPECT_GT(pairHmmForward(read, "", hap_a),
                  pairHmmForward(read, "", hap_b));
    }
}

TEST(CrossCheck, SuffixArrayAgreesWithStdSort)
{
    Rng rng(229);
    const std::string text = randomDna(rng, 200);
    std::vector<std::uint8_t> codes;
    for (char c : text)
        codes.push_back(baseToCode(c));
    codes.push_back(4);

    auto sa = buildSuffixArray(codes);
    std::vector<std::uint32_t> expected(codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i)
        expected[i] = std::uint32_t(i);
    std::sort(expected.begin(), expected.end(),
              [&codes](std::uint32_t a, std::uint32_t b) {
                  return std::lexicographical_compare(
                      codes.begin() + a, codes.end(),
                      codes.begin() + b, codes.end());
              });
    EXPECT_EQ(sa, expected);
}

} // namespace
