/**
 * @file
 * Serial-vs-parallel differential harness: every registered benchmark
 * application (and its CDP variant) must produce byte-identical
 * statistics and cycle counts at sim.threads = 1, 2, and 8. This is
 * the executable proof that the parallel cycle engine's fixed-order
 * outbox drain makes thread count invisible to simulated results.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/suite.hh"

namespace
{

using namespace ggpu;

struct DetCase
{
    std::string app;
    bool cdp;
};

std::string
caseName(const ::testing::TestParamInfo<DetCase> &info)
{
    return info.param.app + (info.param.cdp ? "_CDP" : "");
}

std::vector<DetCase>
allCases()
{
    std::vector<DetCase> cases;
    for (const std::string &app : core::appNames()) {
        cases.push_back({app, false});
        cases.push_back({app, true});
    }
    return cases;
}

/** Human-readable first-differences between two stats snapshots. */
std::string
describeDiff(const sim::SimStats &a, const sim::SimStats &b)
{
    std::ostringstream os;
    auto field = [&os](const char *name, std::uint64_t x,
                       std::uint64_t y) {
        if (x != y)
            os << "  " << name << ": " << x << " vs " << y << "\n";
    };
    field("gpuCycles", a.gpuCycles, b.gpuCycles);
    field("launches", a.launches, b.launches);
    field("totalInsns", a.totalInsns(), b.totalInsns());
    field("issueCycles", a.issueCycles, b.issueCycles);
    field("smCycles", a.smCycles, b.smCycles);
    field("l1Accesses", a.l1Accesses, b.l1Accesses);
    field("l1Misses", a.l1Misses, b.l1Misses);
    field("l2Accesses", a.l2Accesses, b.l2Accesses);
    field("l2Misses", a.l2Misses, b.l2Misses);
    field("dramServed", a.dramServed, b.dramServed);
    field("dramRowHits", a.dramRowHits, b.dramRowHits);
    field("dramPinBusy", a.dramPinBusy, b.dramPinBusy);
    field("dramActive", a.dramActive, b.dramActive);
    field("nocPackets", a.nocPackets, b.nocPackets);
    field("nocFlits", a.nocFlits, b.nocFlits);
    field("nocLatencySum", a.nocLatencySum, b.nocLatencySum);
    for (std::size_t i = 0; i < a.insnByKind.size(); ++i)
        field("insnByKind", a.insnByKind[i], b.insnByKind[i]);
    for (std::size_t i = 0; i < a.memBySpace.size(); ++i)
        field("memBySpace", a.memBySpace[i], b.memBySpace[i]);
    if (!(a.warpOcc == b.warpOcc))
        os << "  warpOcc histogram differs\n";
    if (!(a.stalls == b.stalls))
        os << "  stall histogram differs\n";
    const std::string diff = os.str();
    return diff.empty() ? "  (no scalar field differs)\n" : diff;
}

class DeterminismTest : public ::testing::TestWithParam<DetCase>
{
  protected:
    core::RunRecord
    runWithThreads(int threads,
                   WarpSchedPolicy sched = WarpSchedPolicy::Lrr,
                   bool fast_forward = true)
    {
        core::RunConfig config;
        config.options.scale = kernels::InputScale::Tiny;
        config.options.cdp = GetParam().cdp;
        config.system.sim.threads = threads;
        config.system.sim.fastForward = fast_forward;
        config.system.gpu.warpSched = sched;
        return core::runApp(GetParam().app, config);
    }
};

TEST_P(DeterminismTest, ParallelRunsAreByteIdenticalToSerial)
{
    const core::RunRecord serial = runWithThreads(1);
    ASSERT_TRUE(serial.verified) << serial.detail;

    for (const int threads : {2, 8}) {
        const core::RunRecord parallel = runWithThreads(threads);
        SCOPED_TRACE("sim.threads=" + std::to_string(threads));

        EXPECT_EQ(parallel.verified, serial.verified);
        EXPECT_EQ(parallel.kernelCycles, serial.kernelCycles);
        EXPECT_EQ(parallel.totalCycles, serial.totalCycles);
        EXPECT_EQ(parallel.kernelInvocations, serial.kernelInvocations);
        EXPECT_EQ(parallel.pciTransactions, serial.pciTransactions);
        EXPECT_EQ(parallel.profiledKernelCycles,
                  serial.profiledKernelCycles);
        EXPECT_EQ(parallel.profiledPciCycles, serial.profiledPciCycles);
        EXPECT_TRUE(parallel.stats == serial.stats)
            << "stats diverge from the serial run:\n"
            << describeDiff(serial.stats, parallel.stats);
    }
}

// The two-level scheduler keeps per-slot promotion stamps that the
// SM's SoA warp-state packing and the fast-forward skip path must
// preserve exactly: a sleeping core's scheduler state may only change
// through pick()/onStall()/onRelease() calls the per-cycle loop would
// also have made. Serial vs parallel, fast-forward on vs off — all
// four executions of the same workload must agree byte for byte.
TEST_P(DeterminismTest, TwoLevelSchedulerSurvivesLayoutAndFastForward)
{
    const core::RunRecord serial =
        runWithThreads(1, WarpSchedPolicy::TwoLevel);
    ASSERT_TRUE(serial.verified) << serial.detail;

    const core::RunRecord reference =
        runWithThreads(1, WarpSchedPolicy::TwoLevel, false);
    EXPECT_EQ(serial.kernelCycles, reference.kernelCycles);
    EXPECT_EQ(serial.totalCycles, reference.totalCycles);
    EXPECT_TRUE(serial.stats == reference.stats)
        << "fast-forward diverges from the per-cycle loop:\n"
        << describeDiff(reference.stats, serial.stats);

    const core::RunRecord parallel =
        runWithThreads(8, WarpSchedPolicy::TwoLevel);
    EXPECT_EQ(parallel.kernelCycles, serial.kernelCycles);
    EXPECT_EQ(parallel.totalCycles, serial.totalCycles);
    EXPECT_TRUE(parallel.stats == serial.stats)
        << "stats diverge from the serial run:\n"
        << describeDiff(serial.stats, parallel.stats);
}

INSTANTIATE_TEST_SUITE_P(AllApps, DeterminismTest,
                         ::testing::ValuesIn(allCases()), caseName);

} // namespace
