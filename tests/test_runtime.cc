/**
 * @file
 * Runtime-layer tests: device buffers, host<->device copies over the
 * PCI model, profiler accounting, cache flush semantics on transfers,
 * launch validation, and device-time bookkeeping.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "runtime/device.hh"
#include "sim/warp_ctx.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::sim;

class NopKernel : public KernelBody
{
  public:
    void
    runPhase(WarpCtx &w, int) override
    {
        w.emitInt(4);
    }
};

TEST(Runtime, UploadDownloadRoundTrip)
{
    rt::Device dev;
    std::vector<std::int32_t> host(1000);
    for (std::size_t i = 0; i < host.size(); ++i)
        host[i] = std::int32_t(i * 7 - 3);
    auto buf = dev.alloc<std::int32_t>(host.size());
    dev.upload(buf, host);
    EXPECT_EQ(dev.download(buf), host);
}

TEST(Runtime, TransfersAdvanceTimeAndProfile)
{
    rt::Device dev;
    auto buf = dev.alloc<char>(1 << 20);
    std::vector<char> host(1 << 20, 'x');
    const Cycles before = dev.gpu().now();
    dev.upload(buf, host);
    EXPECT_GT(dev.gpu().now(), before);
    EXPECT_EQ(dev.profiler().pciTransactions(), 1u);
    EXPECT_EQ(dev.profiler().pciBytes(), std::uint64_t(1) << 20);
    EXPECT_GT(dev.profiler().pciCycles(), 0u);
}

TEST(Runtime, TransfersFlushCaches)
{
    rt::Device dev;
    auto buf = dev.alloc<std::int32_t>(64);
    std::vector<std::int32_t> host(64, 1);
    dev.upload(buf, host);

    // Warm the L2 through a kernel that touches the buffer.
    class TouchKernel : public KernelBody
    {
      public:
        explicit TouchKernel(Addr addr) : addr_(addr) {}
        void
        runPhase(WarpCtx &w, int) override
        {
            (void)w.loadGlobal<std::int32_t>(addr_, w.laneId());
        }

      private:
        Addr addr_;
    };
    LaunchSpec spec;
    spec.name = "touch";
    spec.grid = {1, 1, 1};
    spec.cta = {32, 1, 1};
    spec.body = std::make_shared<TouchKernel>(buf.addr);
    dev.launch(spec);
    const std::uint64_t misses_first = dev.gpu().stats().l1Misses;
    EXPECT_GT(misses_first, 0u);

    // A memcpy between launches flushes -> the second launch misses
    // again (the inter-kernel locality loss the paper describes).
    dev.upload(buf, host);
    dev.launch(spec);
    EXPECT_GE(dev.gpu().stats().l1Misses, 2 * misses_first);
}

TEST(Runtime, ProfilerCountsPerKernelName)
{
    rt::Device dev;
    LaunchSpec spec;
    spec.name = "nop";
    spec.grid = {1, 1, 1};
    spec.cta = {32, 1, 1};
    spec.body = std::make_shared<NopKernel>();
    dev.launch(spec);
    dev.launch(spec);
    spec.name = "other";
    dev.launch(spec);
    EXPECT_EQ(dev.profiler().kernelInvocations(), 3u);
    EXPECT_EQ(dev.profiler().byKernel().at("nop"), 2u);
    EXPECT_EQ(dev.profiler().byKernel().at("other"), 1u);
}

TEST(Runtime, SecondsConversionUsesCoreClock)
{
    rt::Device dev;
    // 1.5e9 cycles at 1.5 GHz = 1 second.
    EXPECT_DOUBLE_EQ(dev.seconds(1500000000ull), 1.0);
}

TEST(Runtime, LaunchValidationRejectsBadSpecs)
{
    rt::Device dev;
    LaunchSpec no_body;
    no_body.grid = {1, 1, 1};
    no_body.cta = {32, 1, 1};
    EXPECT_THROW(dev.launch(no_body), FatalError);

    LaunchSpec empty_grid;
    empty_grid.grid = {0, 1, 1};
    empty_grid.cta = {32, 1, 1};
    empty_grid.body = std::make_shared<NopKernel>();
    EXPECT_THROW(dev.launch(empty_grid), FatalError);

    LaunchSpec huge_cta;
    huge_cta.grid = {1, 1, 1};
    huge_cta.cta = {4096, 1, 1};
    huge_cta.body = std::make_shared<NopKernel>();
    EXPECT_THROW(dev.launch(huge_cta), FatalError);
}

TEST(Runtime, BackToBackLaunchesAccumulateStats)
{
    rt::Device dev;
    LaunchSpec spec;
    spec.name = "nop";
    spec.grid = {4, 1, 1};
    spec.cta = {64, 1, 1};
    spec.body = std::make_shared<NopKernel>();
    const auto first = dev.launch(spec);
    const auto &stats1 = dev.gpu().stats();
    const std::uint64_t insns1 = stats1.totalInsns();
    dev.launch(spec);
    const auto &stats2 = dev.gpu().stats();
    EXPECT_EQ(stats2.launches, 2u);
    EXPECT_EQ(stats2.totalInsns(), 2 * insns1);
    EXPECT_GT(first.cycles, 0u);
    dev.gpu().resetStats();
    EXPECT_EQ(dev.gpu().stats().totalInsns(), 0u);
}

TEST(Runtime, DeviceMemoryBoundsAreEnforced)
{
    rt::Device dev;
    auto buf = dev.alloc<std::int32_t>(16);
    std::int32_t value = 0;
    EXPECT_THROW(dev.gpu().mem().read(buf.addr + (1 << 20), &value, 4),
                 PanicError);
    EXPECT_THROW(dev.gpu().mem().read(0, &value, 4), PanicError);
}

TEST(Runtime, PerfectMemoryConfigSpeedsUpMemoryBoundKernel)
{
    class StreamKernel : public KernelBody
    {
      public:
        explicit StreamKernel(Addr addr) : addr_(addr) {}
        void
        runPhase(WarpCtx &w, int) override
        {
            for (std::uint32_t i = 0; i < 64; ++i) {
                auto idx = w.iota(i * 1024, 32);  // strided: 32 lines
                auto v = w.loadGlobal<std::int32_t>(addr_, idx);
                w.emitInt(1, v.dep);
            }
        }

      private:
        Addr addr_;
    };

    auto run = [](bool perfect) {
        SystemConfig cfg;
        cfg.gpu.perfectMemory = perfect;
        rt::Device dev(cfg);
        auto buf = dev.alloc<std::int32_t>(1 << 20);
        LaunchSpec spec;
        spec.name = "stream";
        spec.grid = {8, 1, 1};
        spec.cta = {64, 1, 1};
        spec.body = std::make_shared<StreamKernel>(buf.addr);
        return dev.launch(spec).cycles;
    };
    EXPECT_LT(run(true), run(false));
}

} // namespace
