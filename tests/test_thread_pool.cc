/**
 * @file
 * Unit and stress tests for the simulation engine's worker pool: chunk
 * coverage and ordering, barrier reuse across tens of thousands of
 * jobs (one per simulated cycle), exception propagation, and shutdown
 * from idle, spinning, and recently-busy states.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/thread_pool.hh"

namespace
{

using ggpu::ThreadPool;

TEST(ThreadPool, HardwareLanesIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareLanes(), 1);
}

TEST(ThreadPool, ZeroResolvesToHardwareLanes)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.lanes(), ThreadPool::hardwareLanes());
}

TEST(ThreadPool, SingleLaneRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.lanes(), 1);
    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id seen;
    pool.parallelFor(4, [&](std::size_t, std::size_t) {
        seen = std::this_thread::get_id();
    });
    EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.lanes(), 4);

    const std::size_t n = 10000;
    std::vector<int> hits(n, 0);
    pool.parallelFor(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            ++hits[i];
    });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, MoreLanesThanItems)
{
    ThreadPool pool(8);
    std::vector<int> hits(3, 0);
    pool.parallelFor(hits.size(),
                     [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                             ++hits[i];
                     });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, EmptyJobIsANoop)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t, std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ChunkPartitionIsStable)
{
    // The index->chunk mapping must depend only on (n, lanes): the
    // parallel engine relies on per-index state staying disjoint and
    // the same result arising from every dispatch of the same job.
    ThreadPool pool(3);
    const std::size_t n = 100;
    std::vector<int> first(n, -1), second(n, -1);
    auto record = [](std::vector<int> &out) {
        return [&out](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                out[i] = int(begin);  // chunk identity = its begin index
        };
    };
    pool.parallelFor(n, record(first));
    pool.parallelFor(n, record(second));
    EXPECT_EQ(first, second);
}

TEST(ThreadPool, BarrierReuseAcross10kCycles)
{
    // One dispatch per simulated cycle is the hot path; the barrier
    // must stay correct across at least 10k reuses.
    ThreadPool pool(4);
    const std::size_t n = 64;
    const int cycles = 10000;
    std::vector<std::uint32_t> counters(n, 0);
    for (int c = 0; c < cycles; ++c) {
        pool.parallelFor(n, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                ++counters[i];
        });
    }
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(counters[i], std::uint32_t(cycles)) << "index " << i;
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [](std::size_t begin, std::size_t) {
                             if (begin == 0)
                                 throw std::runtime_error("chunk failed");
                         }),
        std::runtime_error);

    // Subsequent jobs run normally after an exception.
    std::atomic<std::size_t> total{0};
    pool.parallelFor(100, [&](std::size_t begin, std::size_t end) {
        total.fetch_add(end - begin, std::memory_order_relaxed);
    });
    EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPool, PropagatesPanicError)
{
    // SM ticks panic() on internal invariant violations; the pool must
    // surface that as the same exception type on the caller.
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(
                     10,
                     [](std::size_t, std::size_t) {
                         ggpu::panic("tick invariant violated");
                     }),
                 ggpu::PanicError);
}

TEST(ThreadPool, ExceptionInEveryChunkYieldsOneThrow)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(100, [](std::size_t, std::size_t) {
            throw std::runtime_error("all chunks fail");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "all chunks fail");
    }
}

TEST(ThreadPool, ShutdownWhileIdleNeverUsed)
{
    for (int lanes = 1; lanes <= 8; ++lanes)
        ThreadPool pool(lanes);  // construct + immediately destroy
}

TEST(ThreadPool, ShutdownWhileWorkersSleep)
{
    ThreadPool pool(4);
    pool.parallelFor(8, [](std::size_t, std::size_t) {});
    // Give workers time to exhaust their spin/yield budget and block
    // on the condition variable, then destroy.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

TEST(ThreadPool, ShutdownImmediatelyAfterBusyJob)
{
    std::atomic<std::size_t> done{0};
    {
        ThreadPool pool(4);
        pool.parallelFor(4, [&](std::size_t begin, std::size_t end) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            done.fetch_add(end - begin, std::memory_order_relaxed);
        });
        // Destructor runs while workers are barely out of the job.
    }
    EXPECT_EQ(done.load(), 4u);
}

TEST(ThreadPool, ManyPoolsChurn)
{
    // Start/stop churn: catches join/notify races under TSAN.
    for (int round = 0; round < 50; ++round) {
        ThreadPool pool(3);
        std::atomic<int> total{0};
        pool.parallelFor(16, [&](std::size_t begin, std::size_t end) {
            total.fetch_add(int(end - begin),
                            std::memory_order_relaxed);
        });
        ASSERT_EQ(total.load(), 16);
    }
}

TEST(ThreadPool, LargeReductionMatchesSerial)
{
    const std::size_t n = 1u << 16;
    std::vector<std::uint64_t> values(n);
    std::iota(values.begin(), values.end(), 0);
    const std::uint64_t expected =
        std::accumulate(values.begin(), values.end(),
                        std::uint64_t(0));

    for (int lanes : {1, 2, 5, 8}) {
        ThreadPool pool(lanes);
        std::vector<std::uint64_t> partial(n, 0);
        pool.parallelFor(n, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                partial[i] = values[i];
        });
        const std::uint64_t total =
            std::accumulate(partial.begin(), partial.end(),
                            std::uint64_t(0));
        ASSERT_EQ(total, expected) << "lanes " << lanes;
    }
}

} // namespace
