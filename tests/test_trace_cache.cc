/**
 * @file
 * Contract tests for the persistent trace cache (core::TraceStore's
 * disk layer): a cold miss emits and persists, a warm hit in a fresh
 * store loads a byte-identical bundle without re-emitting, damaged or
 * stale-format files are rejected and re-emitted, and bundles that
 * failed functional verification are never persisted or silently
 * reused (FatalError under GGPU_STRICT_VERIFY=1).
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/log.hh"
#include "core/trace_store.hh"
#include "sim/trace_serialize.hh"

namespace fs = std::filesystem;
using ggpu::core::TraceStore;
using ggpu::kernels::AppOptions;
using ggpu::sim::TraceBundle;

namespace
{

AppOptions
tinyOptions()
{
    AppOptions options;
    options.scale = ggpu::kernels::InputScale::Tiny;
    return options;
}

/** Fresh per-test cache directory under the build tree. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = "trace_cache_test/" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(bool(in)) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size()));
    ASSERT_TRUE(bool(out)) << path;
}

} // namespace

TEST(TraceCache, ColdMissEmitsAndPersists)
{
    const std::string dir = freshDir("cold");
    TraceStore store(dir);
    const TraceBundle &bundle = store.get("SW", tinyOptions(), 128);
    EXPECT_TRUE(bundle.verified) << bundle.detail;
    EXPECT_EQ(store.emissions(), 1u);
    EXPECT_EQ(store.diskHits(), 0u);
    EXPECT_EQ(store.diskStores(), 1u);
    const std::string path = store.cacheFilePath("SW", tinyOptions(), 128);
    ASSERT_FALSE(path.empty());
    EXPECT_TRUE(fs::exists(path));

    // Second get() in the same store is an in-memory hit.
    store.get("SW", tinyOptions(), 128);
    EXPECT_EQ(store.emissions(), 1u);
    EXPECT_EQ(store.hits(), 1u);
}

TEST(TraceCache, WarmHitAcrossProcessesIsByteIdentical)
{
    const std::string dir = freshDir("warm");
    std::string first_bytes;
    {
        TraceStore store(dir);
        first_bytes =
            ggpu::sim::serializeBundle(store.get("SW", tinyOptions(), 128));
        EXPECT_EQ(store.emissions(), 1u);
    }
    // A fresh store over the same directory models a second process:
    // it must load, not re-emit, and see the exact same bundle.
    TraceStore second(dir);
    const TraceBundle &loaded = second.get("SW", tinyOptions(), 128);
    EXPECT_EQ(second.emissions(), 0u);
    EXPECT_EQ(second.diskHits(), 1u);
    EXPECT_TRUE(loaded.verified);
    EXPECT_EQ(ggpu::sim::serializeBundle(loaded), first_bytes);
}

TEST(TraceCache, TruncatedFileRejectedAndReemitted)
{
    const std::string dir = freshDir("truncated");
    std::string path;
    {
        TraceStore store(dir);
        store.get("SW", tinyOptions(), 128);
        path = store.cacheFilePath("SW", tinyOptions(), 128);
    }
    const std::string bytes = readFile(path);
    writeFile(path, bytes.substr(0, bytes.size() / 2));

    TraceStore store(dir);
    const TraceBundle &bundle = store.get("SW", tinyOptions(), 128);
    EXPECT_TRUE(bundle.verified);
    EXPECT_EQ(store.corruptRejects(), 1u);
    EXPECT_EQ(store.diskHits(), 0u);
    EXPECT_EQ(store.emissions(), 1u);
    // The re-emission repaired the entry for the next process (the
    // bytes may differ only in the recorded reference wall time).
    EXPECT_EQ(store.diskStores(), 1u);
    TraceBundle repaired;
    std::string error;
    ASSERT_TRUE(
        ggpu::sim::deserializeBundle(readFile(path), repaired, &error))
        << error;
    EXPECT_TRUE(repaired.verified);
}

TEST(TraceCache, BitFlippedPayloadRejectedByChecksum)
{
    const std::string dir = freshDir("bitflip");
    std::string path;
    {
        TraceStore store(dir);
        store.get("SW", tinyOptions(), 128);
        path = store.cacheFilePath("SW", tinyOptions(), 128);
    }
    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() / 2] = char(bytes[bytes.size() / 2] ^ 0x40);
    writeFile(path, bytes);

    TraceStore store(dir);
    EXPECT_TRUE(store.get("SW", tinyOptions(), 128).verified);
    EXPECT_EQ(store.corruptRejects(), 1u);
    EXPECT_EQ(store.emissions(), 1u);
}

TEST(TraceCache, FormatVersionBumpInvalidatesOldEntries)
{
    const std::string dir = freshDir("version");
    std::string path;
    {
        TraceStore store(dir);
        store.get("SW", tinyOptions(), 128);
        path = store.cacheFilePath("SW", tinyOptions(), 128);
    }
    // Pretend the file was written by a future format: the u32 wire
    // version lives right after the 8-byte magic.
    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 12u);
    bytes[8] = char(bytes[8] + 1);
    writeFile(path, bytes);

    TraceStore store(dir);
    EXPECT_TRUE(store.get("SW", tinyOptions(), 128).verified);
    EXPECT_EQ(store.corruptRejects(), 1u);
    EXPECT_EQ(store.emissions(), 1u);
}

TEST(TraceCache, UnverifiedBundleNeverPersistedOrReused)
{
    const std::string dir = freshDir("unverified");
    TraceStore store(dir);
    int emitted = 0;
    store.setEmitter([&emitted](const std::string &app,
                                const AppOptions &options,
                                std::uint32_t line_bytes) {
        ++emitted;
        TraceBundle bundle =
            ggpu::core::emitTrace(app, options, line_bytes);
        bundle.verified = false;
        bundle.detail = "injected verification failure";
        return bundle;
    });

    const TraceBundle &first = store.get("SW", tinyOptions(), 128);
    EXPECT_FALSE(first.verified);
    EXPECT_EQ(store.diskStores(), 0u);
    EXPECT_FALSE(
        fs::exists(store.cacheFilePath("SW", tinyOptions(), 128)));

    // No silent reuse: the same key re-emits (the failure may be
    // input-dependent and the caller must see a fresh attempt).
    store.get("SW", tinyOptions(), 128);
    EXPECT_EQ(emitted, 2);
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.diskStores(), 0u);
}

TEST(TraceCache, StrictVerifyTurnsUnverifiedIntoFatal)
{
    const std::string dir = freshDir("strict");
    TraceStore store(dir);
    store.setEmitter([](const std::string &app, const AppOptions &options,
                        std::uint32_t line_bytes) {
        TraceBundle bundle =
            ggpu::core::emitTrace(app, options, line_bytes);
        bundle.verified = false;
        return bundle;
    });

    ::setenv("GGPU_STRICT_VERIFY", "1", 1);
    EXPECT_THROW(store.get("SW", tinyOptions(), 128), ggpu::FatalError);
    ::unsetenv("GGPU_STRICT_VERIFY");
    EXPECT_EQ(store.diskStores(), 0u);
}

TEST(TraceCache, GcEvictsOldestFirstUntilUnderBudget)
{
    const std::string dir = freshDir("gc_lru");
    // Three 100-byte "bundles" with staggered ages; GC only looks at
    // names, sizes, and mtimes, so synthetic files are enough.
    const std::string payload(100, 'x');
    using namespace std::chrono_literals;
    const auto now = fs::file_time_type::clock::now();
    writeFile(dir + "/a.ggputrace", payload);
    writeFile(dir + "/b.ggputrace", payload);
    writeFile(dir + "/c.ggputrace", payload);
    fs::last_write_time(dir + "/a.ggputrace", now - 3h);
    fs::last_write_time(dir + "/b.ggputrace", now - 2h);
    fs::last_write_time(dir + "/c.ggputrace", now - 1h);

    const auto stats = ggpu::core::traceCacheGc(dir, 150);
    EXPECT_EQ(stats.scanned, 3u);
    EXPECT_EQ(stats.bytesBefore, 300u);
    EXPECT_EQ(stats.evicted, 2u);
    EXPECT_EQ(stats.bytesAfter, 100u);
    EXPECT_FALSE(fs::exists(dir + "/a.ggputrace"));
    EXPECT_FALSE(fs::exists(dir + "/b.ggputrace"));
    EXPECT_TRUE(fs::exists(dir + "/c.ggputrace"));

    // Budget 0 is report-only.
    const auto report = ggpu::core::traceCacheGc(dir, 0);
    EXPECT_EQ(report.bytesBefore, 100u);
    EXPECT_EQ(report.evicted, 0u);
}

TEST(TraceCache, GcNeverEvictsEntryWhoseLockIsHeld)
{
    const std::string dir = freshDir("gc_locked");
    const std::string payload(100, 'x');
    using namespace std::chrono_literals;
    const auto now = fs::file_time_type::clock::now();
    writeFile(dir + "/old.ggputrace", payload);
    writeFile(dir + "/new.ggputrace", payload);
    fs::last_write_time(dir + "/old.ggputrace", now - 2h);
    fs::last_write_time(dir + "/new.ggputrace", now - 1h);

    // Hold the oldest entry's per-key flock, as an in-progress load or
    // emission would.
    const int fd = ::open((dir + "/old.ggputrace.lock").c_str(),
                          O_CREAT | O_RDWR, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::flock(fd, LOCK_EX), 0);

    const auto stats = ggpu::core::traceCacheGc(dir, 100);
    EXPECT_EQ(stats.lockSkipped, 1u);
    EXPECT_EQ(stats.evicted, 1u);
    EXPECT_TRUE(fs::exists(dir + "/old.ggputrace"));   // In use: kept
    EXPECT_FALSE(fs::exists(dir + "/new.ggputrace"));  // LRU fallback
    ::close(fd);
}

TEST(TraceCache, StoreHonorsMaxBytesBudgetFromEnvironment)
{
    const std::string dir = freshDir("gc_env");
    ::setenv("GGPU_TRACE_CACHE_MAX_BYTES", "1", 1);
    TraceStore store(dir);
    store.get("SW", tinyOptions(), 128);
    const std::string first = store.cacheFilePath("SW", tinyOptions(), 128);
    EXPECT_TRUE(fs::exists(first));

    // Storing a second bundle blows the 1-byte budget; the GC pass runs
    // while the second key's flock is still held, so it evicts the
    // older entry and keeps the one just published.
    store.get("NW", tinyOptions(), 128);
    const std::string second = store.cacheFilePath("NW", tinyOptions(), 128);
    ::unsetenv("GGPU_TRACE_CACHE_MAX_BYTES");
    EXPECT_FALSE(fs::exists(first));
    EXPECT_TRUE(fs::exists(second));
}

TEST(TraceCache, SerializeRoundTripPreservesReplay)
{
    // Byte-level round trip independent of the disk layer: serialize,
    // deserialize, and re-serialize must be a fixed point.
    const TraceBundle bundle =
        ggpu::core::emitTrace("NW", tinyOptions(), 128);
    const std::string bytes = ggpu::sim::serializeBundle(bundle);
    TraceBundle decoded;
    std::string error;
    ASSERT_TRUE(ggpu::sim::deserializeBundle(bytes, decoded, &error))
        << error;
    EXPECT_EQ(decoded.app, bundle.app);
    EXPECT_EQ(decoded.kernels.size(), bundle.kernels.size());
    EXPECT_EQ(ggpu::sim::serializeBundle(decoded), bytes);
}
