/**
 * @file
 * Suite-wide checker gate: every one of the paper's ten applications,
 * in both the base and CDP variants, must emit at tiny scale with zero
 * racecheck/synccheck/memcheck diagnostics (and still verify against
 * its CPU reference). Also the zero-perturbation contract: installing
 * the checker must not change a single emitted trace op, transaction,
 * or recorded command.
 */

#include <gtest/gtest.h>

#include "check/run_check.hh"
#include "core/suite.hh"
#include "core/trace_store.hh"

namespace
{

using ggpu::check::CheckResult;

class CheckCleanTest
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{
};

TEST_P(CheckCleanTest, EmitsWithZeroDiagnostics)
{
    const auto &[app, cdp] = GetParam();
    ggpu::kernels::AppOptions options;
    options.scale = ggpu::kernels::InputScale::Tiny;
    options.cdp = cdp;

    const CheckResult result = ggpu::check::checkApp(app, options);
    EXPECT_TRUE(result.verified) << result.detail;
    EXPECT_GT(result.kernels, 0u);
    EXPECT_GT(result.accessesChecked, 0u);
    EXPECT_EQ(result.droppedDiagnostics, 0u);
    EXPECT_TRUE(result.clean()) << [&] {
        std::string all;
        for (const auto &diag : result.diagnostics)
            all += "  " + toString(diag) + "\n";
        return all;
    }();
}

std::vector<std::tuple<std::string, bool>>
allRuns()
{
    std::vector<std::tuple<std::string, bool>> runs;
    for (const auto &app : ggpu::core::appNames())
        for (const bool cdp : {false, true})
            runs.emplace_back(app, cdp);
    return runs;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, CheckCleanTest, ::testing::ValuesIn(allRuns()),
    [](const auto &param_info) {
        return std::get<0>(param_info.param) +
               (std::get<1>(param_info.param) ? "_cdp" : "_base");
    });

// ------------------------------------------------------------------
// Zero perturbation: checking must not change what is emitted.
// ------------------------------------------------------------------

void
expectIdenticalCtas(const ggpu::sim::CtaTrace &a,
                    const ggpu::sim::CtaTrace &b)
{
    ASSERT_EQ(a.warps.size(), b.warps.size());
    for (std::size_t w = 0; w < a.warps.size(); ++w) {
        EXPECT_EQ(a.warps[w].ops, b.warps[w].ops);
        EXPECT_EQ(a.warps[w].transactions, b.warps[w].transactions);
    }
    ASSERT_EQ(a.children.size(), b.children.size());
    for (std::size_t c = 0; c < a.children.size(); ++c) {
        EXPECT_EQ(a.children[c]->spec.name, b.children[c]->spec.name);
        ASSERT_EQ(a.children[c]->ctas.size(), b.children[c]->ctas.size());
        for (std::size_t i = 0; i < a.children[c]->ctas.size(); ++i)
            expectIdenticalCtas(a.children[c]->ctas[i],
                                b.children[c]->ctas[i]);
    }
}

TEST(CheckZeroPerturbation, TraceIsByteIdenticalUnderChecker)
{
    // NW-CDP exercises shared memory, global traffic, barriers and
    // child grids in one bundle.
    ggpu::kernels::AppOptions options;
    options.scale = ggpu::kernels::InputScale::Tiny;
    options.cdp = true;

    const auto plain = ggpu::core::emitTrace("NW", options, 128);

    ggpu::check::Checker checker;
    ggpu::sim::TraceBundle checked;
    {
        ggpu::sim::ScopedEmissionObserver scope(&checker);
        checked = ggpu::core::emitTrace("NW", options, 128);
    }

    EXPECT_TRUE(plain.verified);
    EXPECT_TRUE(checked.verified);
    ASSERT_EQ(plain.commands.size(), checked.commands.size());
    ASSERT_EQ(plain.kernels.size(), checked.kernels.size());
    for (std::size_t k = 0; k < plain.kernels.size(); ++k) {
        const auto &ka = plain.kernels[k];
        const auto &kb = checked.kernels[k];
        EXPECT_EQ(ka.spec.name, kb.spec.name);
        ASSERT_EQ(ka.ctas.size(), kb.ctas.size());
        for (std::size_t c = 0; c < ka.ctas.size(); ++c)
            expectIdenticalCtas(ka.ctas[c], kb.ctas[c]);
    }
}

} // namespace
