/**
 * @file
 * Emit-once/time-many differential harness: for every registered
 * benchmark application (and its CDP variant), a RunRecord produced by
 * replaying a cached TraceBundle at multiple sweep points must be
 * byte-identical to one produced by fresh per-point emission — at 1
 * and 8 simulation threads — while the TraceStore performs exactly one
 * emission (and thus one CPU-reference verification) per trace key.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/suite.hh"
#include "core/trace_store.hh"

namespace
{

using namespace ggpu;

struct ReplayCase
{
    std::string app;
    bool cdp;
};

std::string
caseName(const ::testing::TestParamInfo<ReplayCase> &info)
{
    return info.param.app + (info.param.cdp ? "_CDP" : "");
}

std::vector<ReplayCase>
allCases()
{
    std::vector<ReplayCase> cases;
    for (const std::string &app : core::appNames()) {
        cases.push_back({app, false});
        cases.push_back({app, true});
    }
    return cases;
}

/**
 * Two sweep points that change only timing-model knobs, mimicking a
 * fig12-style cache sweep: the baseline and a small-cache variant.
 * Neither changes lineBytes, so both share one trace key.
 */
std::vector<SystemConfig>
sweepPoints()
{
    SystemConfig base;
    SystemConfig small_caches;
    small_caches.gpu.l1SizeBytes = 32u << 10;
    small_caches.gpu.l2SizeBytes = 1u << 20;
    return {base, small_caches};
}

/** Human-readable first-differences between two stats snapshots. */
std::string
describeDiff(const sim::SimStats &a, const sim::SimStats &b)
{
    std::ostringstream os;
    auto field = [&os](const char *name, std::uint64_t x,
                       std::uint64_t y) {
        if (x != y)
            os << "  " << name << ": " << x << " vs " << y << "\n";
    };
    field("gpuCycles", a.gpuCycles, b.gpuCycles);
    field("launches", a.launches, b.launches);
    field("totalInsns", a.totalInsns(), b.totalInsns());
    field("issueCycles", a.issueCycles, b.issueCycles);
    field("smCycles", a.smCycles, b.smCycles);
    field("l1Accesses", a.l1Accesses, b.l1Accesses);
    field("l1Misses", a.l1Misses, b.l1Misses);
    field("l2Accesses", a.l2Accesses, b.l2Accesses);
    field("l2Misses", a.l2Misses, b.l2Misses);
    field("dramServed", a.dramServed, b.dramServed);
    field("dramRowHits", a.dramRowHits, b.dramRowHits);
    field("dramPinBusy", a.dramPinBusy, b.dramPinBusy);
    field("dramActive", a.dramActive, b.dramActive);
    field("nocPackets", a.nocPackets, b.nocPackets);
    field("nocFlits", a.nocFlits, b.nocFlits);
    field("nocLatencySum", a.nocLatencySum, b.nocLatencySum);
    const std::string diff = os.str();
    return diff.empty() ? "  (only histograms differ)\n" : diff;
}

class TraceReplayTest : public ::testing::TestWithParam<ReplayCase>
{
};

TEST_P(TraceReplayTest, ReplayedRecordsMatchFreshEmission)
{
    core::TraceStore store;
    for (const int threads : {1, 8}) {
        std::size_t point_idx = 0;
        for (const SystemConfig &point : sweepPoints()) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " point=" + std::to_string(point_idx++));
            core::RunConfig config;
            config.options.scale = kernels::InputScale::Tiny;
            config.options.cdp = GetParam().cdp;
            config.system = point;
            config.system.sim.threads = threads;

            const core::RunRecord fresh =
                core::runApp(GetParam().app, config);
            const core::RunRecord replayed =
                core::runAppCached(store, GetParam().app, config);

            ASSERT_TRUE(fresh.verified) << fresh.detail;
            EXPECT_EQ(replayed.verified, fresh.verified);
            EXPECT_EQ(replayed.detail, fresh.detail);
            EXPECT_EQ(replayed.kernelCycles, fresh.kernelCycles);
            EXPECT_EQ(replayed.totalCycles, fresh.totalCycles);
            EXPECT_EQ(replayed.kernelInvocations,
                      fresh.kernelInvocations);
            EXPECT_EQ(replayed.pciTransactions, fresh.pciTransactions);
            EXPECT_EQ(replayed.profiledKernelCycles,
                      fresh.profiledKernelCycles);
            EXPECT_EQ(replayed.profiledPciCycles,
                      fresh.profiledPciCycles);
            EXPECT_EQ(replayed.pciBytes, fresh.pciBytes);
            EXPECT_EQ(replayed.kernelsByName, fresh.kernelsByName);
            EXPECT_TRUE(replayed.stats == fresh.stats)
                << "replayed stats diverge from fresh emission:\n"
                << describeDiff(fresh.stats, replayed.stats);
        }
    }
    // 2 thread counts x 2 sweep points share one trace key: exactly
    // one emission (and one CPU verification), three cache hits.
    EXPECT_EQ(store.emissions(), 1u);
    EXPECT_EQ(store.hits(), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, TraceReplayTest,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(TraceStore, LineBytesIsPartOfTheKey)
{
    core::TraceStore store;
    kernels::AppOptions options;
    options.scale = kernels::InputScale::Tiny;
    (void)store.get("SW", options, 128);
    (void)store.get("SW", options, 128);
    EXPECT_EQ(store.emissions(), 1u);
    EXPECT_EQ(store.hits(), 1u);
    // A different coalescing granularity emits different transactions
    // and must not reuse the 128B bundle.
    (void)store.get("SW", options, 64);
    EXPECT_EQ(store.emissions(), 2u);
}

TEST(TraceStore, EscapeHatchDisablesCaching)
{
    ASSERT_EQ(setenv("GGPU_NO_TRACE_CACHE", "1", 1), 0);
    EXPECT_TRUE(core::traceCacheDisabled());

    core::TraceStore store;
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    const core::RunRecord record =
        core::runAppCached(store, "SW", config);
    EXPECT_TRUE(record.verified) << record.detail;
    EXPECT_EQ(store.emissions(), 0u);  // fresh path, store untouched

    ASSERT_EQ(unsetenv("GGPU_NO_TRACE_CACHE"), 0);
    EXPECT_FALSE(core::traceCacheDisabled());
}

} // namespace
