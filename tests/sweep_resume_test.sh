#!/bin/sh
# End-to-end resume test for ggpu_sweep (ISSUE 7 acceptance):
#
#  A. one uninterrupted single-worker sweep -> reference artifact;
#  B. a two-worker sweep killed after its first completed point, then
#     resumed with the identical command -> json/BENCH_sweep.json must
#     be byte-identical to A's (both runs share one trace cache, so
#     even the recorded CPU-reference seconds agree), every point
#     present exactly once, and the summary must validate;
#  C. a two-worker sweep over a fresh cache -> the summed store
#     counters must show exactly one emission per distinct trace key.
#
# Usage: sweep_resume_test.sh <ggpu_sweep> <ggpu_metrics_tool>
set -eu

SWEEP=$1
TOOL=$2
OUT=sweep_resume_out
rm -rf "$OUT"
mkdir -p "$OUT"

# 2 apps x 2 variants x 2 line sizes x 2 L2 sizes = 16 points over
# 8 trace keys (L2 is timing-only, so it shares emissions).
GRID="--apps SW,NW --cdp both --scale tiny \
      --axis-line-bytes 64,128 --axis-l2 1048576,4194304"
GGPU_TRACE_CACHE="$OUT/cache"
export GGPU_TRACE_CACHE

# --- Run A: uninterrupted reference -------------------------------
"$SWEEP" --dir "$OUT/a" --workers 1 $GRID > /dev/null

# --- Run B: kill mid-sweep, then resume ---------------------------
# setsid makes the orchestrator a process-group leader so one signal
# takes down it and both workers, like a job-scheduler preemption.
setsid "$SWEEP" --dir "$OUT/b" --workers 2 $GRID > /dev/null 2>&1 &
PID=$!
tries=0
while ! grep -q "^done " "$OUT/b/journal.log" 2>/dev/null; do
    kill -0 "$PID" 2>/dev/null || break   # finished before the kill
    tries=$((tries + 1))
    if [ "$tries" -gt 1200 ]; then
        echo "FAIL: run B made no progress" >&2
        kill -TERM -- "-$PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
kill -TERM -- "-$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

"$SWEEP" --dir "$OUT/b" --workers 2 $GRID > /dev/null

# --- Byte-identity + exactly-once ---------------------------------
cmp "$OUT/a/json/BENCH_sweep.json" "$OUT/b/json/BENCH_sweep.json" || {
    echo "FAIL: resumed artifact differs from uninterrupted run" >&2
    exit 1
}
"$TOOL" validate "$OUT/b/json/BENCH_sweep.json" > /dev/null
runs=$(grep -c '"app"' "$OUT/b/json/BENCH_sweep.json")
if [ "$runs" -ne 16 ]; then
    echo "FAIL: expected 16 runs exactly once, got $runs" >&2
    exit 1
fi
grep -q '"done": 16' "$OUT/b/SWEEP_STATS.json" || {
    echo "FAIL: run B summary does not report 16 done points" >&2
    exit 1
}
grep -q '"sweep"' "$OUT/b/BENCH_SUMMARY.json" || {
    echo "FAIL: merged summary lacks the sweep counters section" >&2
    exit 1
}

# --- Run C: one emission per key across two fresh workers ---------
env GGPU_TRACE_CACHE="$OUT/cache_c" \
    "$SWEEP" --dir "$OUT/c" --workers 2 $GRID > /dev/null
grep -q '"distinct_trace_keys": 8' "$OUT/c/SWEEP_STATS.json" || {
    echo "FAIL: expected 8 distinct trace keys" >&2
    exit 1
}
grep -q '"emissions": 8' "$OUT/c/SWEEP_STATS.json" || {
    echo "FAIL: expected exactly 8 emissions (one per key):" >&2
    cat "$OUT/c/SWEEP_STATS.json" >&2
    exit 1
}

echo "sweep resume test: ok"
