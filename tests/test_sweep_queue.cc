/**
 * @file
 * Unit tests for ggpu_sweep's journaled work queue: claim/done flow,
 * resume from the journal alone, stale-claim requeue via the liveness
 * probe, the retry-once-then-exhausted policy, and tolerance of a torn
 * final journal line (a writer killed mid-append).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "work_queue.hh"

namespace fs = std::filesystem;
using ggpu::tools::ClaimResult;
using ggpu::tools::WorkQueue;

namespace
{

std::string
freshDir(const std::string &name)
{
    const std::string dir = "sweep_queue_test/" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

} // namespace

TEST(SweepQueue, ClaimRunDoneDrainsInOrder)
{
    const std::string dir = freshDir("drain");
    WorkQueue queue(dir, 3);
    const pid_t self = ::getpid();
    for (std::size_t expect = 0; expect < 3; ++expect) {
        std::size_t index = 99;
        int prior = -1;
        ASSERT_EQ(queue.claim(self, index, prior), ClaimResult::Claimed);
        EXPECT_EQ(index, expect);  // Deterministic point order
        EXPECT_EQ(prior, 0);
        queue.markDone(index, self);
    }
    std::size_t index = 0;
    int prior = 0;
    EXPECT_EQ(queue.claim(self, index, prior), ClaimResult::NothingLeft);
    EXPECT_TRUE(queue.allDone());
    EXPECT_TRUE(queue.exhaustedPoints().empty());
}

TEST(SweepQueue, FreshInstanceResumesFromJournal)
{
    const std::string dir = freshDir("resume");
    const pid_t self = ::getpid();
    {
        WorkQueue queue(dir, 3);
        std::size_t index = 0;
        int prior = 0;
        ASSERT_EQ(queue.claim(self, index, prior), ClaimResult::Claimed);
        queue.markDone(index, self);
    }
    // A second orchestrator invocation sees point 0 done and hands out
    // the remaining two.
    WorkQueue queue(dir, 3);
    queue.reload();
    EXPECT_EQ(queue.doneCount(), 1u);
    std::size_t index = 0;
    int prior = 0;
    ASSERT_EQ(queue.claim(self, index, prior), ClaimResult::Claimed);
    EXPECT_EQ(index, 1u);
}

TEST(SweepQueue, StaleClaimFromDeadPidIsRequeued)
{
    const std::string dir = freshDir("stale");
    WorkQueue queue(dir, 1);
    std::size_t index = 0;
    int prior = 0;
    ASSERT_EQ(queue.claim(12345, index, prior), ClaimResult::Claimed);

    // While the claimant "lives", the point is unavailable.
    queue.setLiveProbe([](const std::string &) { return true; });
    EXPECT_EQ(queue.claim(::getpid(), index, prior),
              ClaimResult::WaitAndRetry);

    // Once it dies, the same point is claimable again and the caller
    // learns it is a retry (prior attempt count > 0).
    queue.setLiveProbe([](const std::string &) { return false; });
    ASSERT_EQ(queue.claim(::getpid(), index, prior),
              ClaimResult::Claimed);
    EXPECT_EQ(index, 0u);
    EXPECT_EQ(prior, 1);
}

TEST(SweepQueue, RecycledPidClaimIsRequeued)
{
    // Regression: a crashed worker's pid recycled by an unrelated live
    // process must not pin its point forever. The journal records a
    // claim whose pid is alive (ours) but whose start time belongs to
    // the dead worker; the default probe must see through the reuse.
    const std::string dir = freshDir("recycled");
    const pid_t self = ::getpid();
    {
        std::ofstream os(dir + "/journal.log", std::ios::binary);
        char host[256] = {};
        ASSERT_EQ(::gethostname(host, sizeof(host) - 1), 0);
        // Start time 1 (boot-era) can never match a test process.
        os << "claim 0 " << host << ":" << self << ":1\n";
    }
    WorkQueue queue(dir, 1);
    std::size_t index = 99;
    int prior = -1;
    // A pid-only liveness probe would return WaitAndRetry here forever.
    ASSERT_EQ(queue.claim(self, index, prior), ClaimResult::Claimed);
    EXPECT_EQ(index, 0u);
    EXPECT_EQ(prior, 1);

    // Sanity: an honest token for a live process still holds its claim.
    WorkQueue other(dir, 1);
    EXPECT_EQ(other.claim(self, index, prior), ClaimResult::WaitAndRetry);
}

TEST(SweepQueue, FailedPointRetriesOnceThenExhausts)
{
    const std::string dir = freshDir("retry");
    WorkQueue queue(dir, 1, 2);
    const pid_t self = ::getpid();
    std::size_t index = 0;
    int prior = 0;

    ASSERT_EQ(queue.claim(self, index, prior), ClaimResult::Claimed);
    queue.markFailed(index, self, "simulated crash\nwith newline");
    ASSERT_EQ(queue.claim(self, index, prior), ClaimResult::Claimed);
    EXPECT_EQ(prior, 1);
    queue.markFailed(index, self, "second failure");

    EXPECT_EQ(queue.claim(self, index, prior), ClaimResult::NothingLeft);
    queue.reload();
    EXPECT_FALSE(queue.allDone());
    ASSERT_EQ(queue.exhaustedPoints().size(), 1u);
    EXPECT_EQ(queue.exhaustedPoints()[0], 0u);
    EXPECT_EQ(queue.states()[0].failures, 2);
}

TEST(SweepQueue, TornFinalJournalLineIsIgnored)
{
    const std::string dir = freshDir("torn");
    const pid_t self = ::getpid();
    {
        WorkQueue queue(dir, 2);
        std::size_t index = 0;
        int prior = 0;
        ASSERT_EQ(queue.claim(self, index, prior), ClaimResult::Claimed);
        queue.markDone(index, self);
    }
    // A writer killed mid-append leaves a partial record with no
    // trailing newline; replay must skip it, not misparse it.
    {
        std::ofstream os(dir + "/journal.log",
                         std::ios::app | std::ios::binary);
        os << "done 1";
    }
    WorkQueue queue(dir, 2);
    queue.reload();
    EXPECT_EQ(queue.doneCount(), 1u);
    std::size_t index = 0;
    int prior = 0;
    ASSERT_EQ(queue.claim(self, index, prior), ClaimResult::Claimed);
    EXPECT_EQ(index, 1u);
}
