/**
 * @file
 * Unit and property tests for the pairwise alignment engines (NW, SW,
 * affine/banded) — the CPU references every GPU kernel is checked
 * against.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "genomics/align/banded.hh"
#include "genomics/align/nw.hh"
#include "genomics/align/sw.hh"
#include "genomics/datagen.hh"

namespace
{

using namespace ggpu;
using namespace ggpu::genomics;

const Scoring kScore{};  // match 2, mismatch -3, open -5, extend -1

TEST(Nw, IdenticalSequencesScoreAllMatches)
{
    EXPECT_EQ(nwScore("ACGTACGT", "ACGTACGT", kScore), 16);
}

TEST(Nw, EmptyVsSequenceIsAllGaps)
{
    EXPECT_EQ(nwScore("", "ACGT", kScore), 4 * kScore.gapExtend);
    EXPECT_EQ(nwScore("ACGT", "", kScore), 4 * kScore.gapExtend);
    EXPECT_EQ(nwScore("", "", kScore), 0);
}

TEST(Nw, KnownSmallCase)
{
    // GATTACA vs GCATGCT, classic textbook pair with match=1,
    // mismatch=-1, gap=-1.
    Scoring unit;
    unit.match = 1;
    unit.mismatch = -1;
    unit.gapExtend = -1;
    unit.gapOpen = -1;
    EXPECT_EQ(nwScore("GATTACA", "GCATGCT", unit), 0);
}

TEST(Nw, AlignTracebackReconstructsScore)
{
    Rng rng(11);
    for (int iter = 0; iter < 20; ++iter) {
        const std::string a = randomDna(rng, 20 + rng.below(40));
        const std::string b = mutate(rng, a, MutationProfile{});
        const NwAlignment aln = nwAlign(a, b, kScore);
        ASSERT_EQ(aln.alignedA.size(), aln.alignedB.size());

        // Re-score the traceback column by column.
        int rescore = 0;
        std::string ra, rb;
        for (std::size_t i = 0; i < aln.alignedA.size(); ++i) {
            const char ca = aln.alignedA[i];
            const char cb = aln.alignedB[i];
            ASSERT_FALSE(ca == '-' && cb == '-');
            if (ca == '-' || cb == '-')
                rescore += kScore.gapExtend;
            else
                rescore += kScore.subst(ca, cb);
            if (ca != '-')
                ra.push_back(ca);
            if (cb != '-')
                rb.push_back(cb);
        }
        EXPECT_EQ(rescore, aln.score);
        EXPECT_EQ(ra, a);  // gapped rows spell the inputs
        EXPECT_EQ(rb, b);
        EXPECT_EQ(aln.score, nwScore(a, b, kScore));
    }
}

TEST(Nw, WavefrontMatchesRowMajor)
{
    Rng rng(7);
    for (int iter = 0; iter < 30; ++iter) {
        const std::string a = randomDna(rng, 1 + rng.below(64));
        const std::string b = randomDna(rng, 1 + rng.below(64));
        EXPECT_EQ(nwScoreWavefront(a, b, kScore), nwScore(a, b, kScore))
            << "a=" << a << " b=" << b;
    }
}

TEST(Sw, FindsEmbeddedMotif)
{
    Rng rng(3);
    const std::string motif = "ACGTGTCAACGTTGCA";
    const std::string hay =
        randomDna(rng, 50) + motif + randomDna(rng, 50);
    const SwResult result = swScore(motif, hay, kScore);
    EXPECT_EQ(result.score, int(motif.size()) * kScore.match);
}

TEST(Sw, NeverNegativeAndZeroForDisjointAlphabets)
{
    // All-A vs all-C: best local alignment is empty.
    const SwResult result = swScore("AAAA", "CCCC", kScore);
    EXPECT_EQ(result.score, 0);
}

TEST(Sw, TracebackScoreConsistent)
{
    Rng rng(19);
    for (int iter = 0; iter < 20; ++iter) {
        const std::string a = randomDna(rng, 30 + rng.below(30));
        const std::string b = randomDna(rng, 30 + rng.below(30));
        const SwAlignment aln = swAlign(a, b, kScore);
        const SwResult score_only = swScore(a, b, kScore);
        EXPECT_EQ(aln.score, score_only.score);

        int rescore = 0;
        for (std::size_t i = 0; i < aln.alignedA.size(); ++i) {
            const char ca = aln.alignedA[i];
            const char cb = aln.alignedB[i];
            if (ca == '-' || cb == '-')
                rescore += kScore.gapExtend;
            else
                rescore += kScore.subst(ca, cb);
        }
        EXPECT_EQ(rescore, aln.score);
    }
}

TEST(Sw, LocalAtLeastGlobal)
{
    Rng rng(23);
    for (int iter = 0; iter < 20; ++iter) {
        const std::string a = randomDna(rng, 10 + rng.below(50));
        const std::string b = randomDna(rng, 10 + rng.below(50));
        EXPECT_GE(swScore(a, b, kScore).score, nwScore(a, b, kScore));
    }
}

TEST(Affine, GlobalIdenticalIsAllMatch)
{
    const AffineResult r =
        alignAffine("ACGTACGTAC", "ACGTACGTAC", kScore,
                    AlignMode::Global);
    EXPECT_EQ(r.score, 20);
    EXPECT_EQ(r.endQ, 10u);
    EXPECT_EQ(r.endT, 10u);
}

TEST(Affine, OneGapChargedOpenPlusExtend)
{
    // Query ACGT vs target ACGGT: one 1-base gap in the query.
    const AffineResult r =
        alignAffine("ACGT", "ACGGT", kScore, AlignMode::Global);
    EXPECT_EQ(r.score,
              4 * kScore.match + kScore.gapOpen + kScore.gapExtend);
}

TEST(Affine, LongGapPrefersSingleOpen)
{
    // With affine gaps, a 3-gap costs open + 3*extend, not 3*open.
    const AffineResult r =
        alignAffine("AAAA", "AAATTTA", kScore, AlignMode::Global);
    EXPECT_EQ(r.score,
              4 * kScore.match + kScore.gapOpen + 3 * kScore.gapExtend);
}

TEST(Affine, LocalMatchesSwWhenGapsLinear)
{
    // With gapOpen == 0 the affine recurrence degenerates to linear
    // gaps, so Local mode must agree with the SW reference.
    Scoring linear = kScore;
    linear.gapOpen = 0;
    Rng rng(31);
    for (int iter = 0; iter < 20; ++iter) {
        const std::string a = randomDna(rng, 10 + rng.below(40));
        const std::string b = randomDna(rng, 10 + rng.below(40));
        EXPECT_EQ(alignAffine(a, b, linear, AlignMode::Local).score,
                  swScore(a, b, linear).score)
            << "a=" << a << " b=" << b;
    }
}

TEST(Affine, SemiGlobalFindsReadInReference)
{
    Rng rng(5);
    const std::string read = randomDna(rng, 24);
    const std::string ref = randomDna(rng, 40) + read + randomDna(rng, 40);
    const AffineResult r =
        alignAffine(read, ref, kScore, AlignMode::SemiGlobal);
    EXPECT_EQ(r.score, int(read.size()) * kScore.match);
    EXPECT_EQ(r.endQ, read.size());
}

TEST(Affine, SemiGlobalAtLeastGlobal)
{
    Rng rng(41);
    for (int iter = 0; iter < 20; ++iter) {
        const std::string q = randomDna(rng, 8 + rng.below(24));
        const std::string t = randomDna(rng, 8 + rng.below(48));
        const int semi =
            alignAffine(q, t, kScore, AlignMode::SemiGlobal).score;
        const int global =
            alignAffine(q, t, kScore, AlignMode::Global).score;
        EXPECT_GE(semi, global);
    }
}

TEST(Affine, BandedEqualsUnbandedWithWideBand)
{
    Rng rng(43);
    for (int iter = 0; iter < 20; ++iter) {
        const std::string a = randomDna(rng, 10 + rng.below(30));
        const std::string b = mutate(rng, a, MutationProfile{});
        const int wide = alignAffine(a, b, kScore,
                                     AlignMode::KswBanded, 1000).score;
        const int unbanded =
            alignAffine(a, b, kScore, AlignMode::Local).score;
        EXPECT_EQ(wide, unbanded);
    }
}

TEST(Affine, NarrowBandNeverBeatsWideBand)
{
    Rng rng(47);
    for (int iter = 0; iter < 20; ++iter) {
        const std::string a = randomDna(rng, 20 + rng.below(30));
        const std::string b = mutate(rng, a, MutationProfile{});
        const int narrow =
            alignAffine(a, b, kScore, AlignMode::KswBanded, 4).score;
        const int wide =
            alignAffine(a, b, kScore, AlignMode::KswBanded, 64).score;
        EXPECT_LE(narrow, wide);
    }
}

TEST(Affine, IdentityOfIdenticalIsOne)
{
    EXPECT_DOUBLE_EQ(globalIdentity("ACGTACGT", "ACGTACGT", kScore), 1.0);
}

TEST(Affine, IdentityDropsWithMutation)
{
    Rng rng(53);
    const std::string a = randomDna(rng, 200);
    MutationProfile heavy;
    heavy.substitutionRate = 0.3;
    const std::string b = mutate(rng, a, heavy);
    const double identity = globalIdentity(a, b, kScore);
    EXPECT_LT(identity, 0.95);
    EXPECT_GT(identity, 0.3);
}

} // namespace
