/**
 * @file
 * Event-driven fast-forward equivalence harness (ctest -L engine):
 *
 *  - Byte equivalence: for every application (base and CDP variant)
 *    and for sim.threads in {1, 2, 8}, a fast-forwarded run must
 *    produce a RunRecord identical to the reference per-cycle loop
 *    (GGPU_NO_FAST_FORWARD=1) in every deterministic field, including
 *    the full SimStats.
 *  - Randomized-config fuzz: the same equivalence must hold under
 *    randomly drawn timing configurations (warp scheduler, DRAM
 *    scheduler, NoC topology, core/partition counts, issue width,
 *    L1 on/off, perfect memory), two seeds per app x variant.
 *  - Profiler seam: attaching a TimelineRecorder forces single-cycle
 *    stepping, so an attached run under a fast-forward-enabled config
 *    must match both a detached run's RunRecord and the interval rows
 *    recorded with fast-forward disabled outright.
 *  - Tick contract: the engine must never execute more cycle-loop
 *    iterations than simulated cycles, and the per-SM tick count must
 *    never exceed the cycles x cores slot budget (it equals it when
 *    fast-forward is off). The skipped-slot fraction is reported.
 *  - Op-stream interning: duplicate per-warp instruction streams of
 *    one emission pass must collapse onto shared canonical vectors,
 *    and copy-on-write must isolate later mutation.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/suite.hh"
#include "profile/run_profile.hh"
#include "profile/timeline.hh"
#include "sim/warp_ctx.hh"

namespace
{

using namespace ggpu;

/** Force the reference per-cycle loop for the guarded scope. */
class ScopedNoFastForward
{
  public:
    ScopedNoFastForward() { setenv("GGPU_NO_FAST_FORWARD", "1", 1); }
    ~ScopedNoFastForward() { unsetenv("GGPU_NO_FAST_FORWARD"); }
};

std::string
describeDiff(const sim::SimStats &a, const sim::SimStats &b)
{
    std::ostringstream os;
    auto field = [&os](const char *name, std::uint64_t x,
                       std::uint64_t y) {
        if (x != y)
            os << "  " << name << ": " << x << " vs " << y << "\n";
    };
    field("gpuCycles", a.gpuCycles, b.gpuCycles);
    field("launches", a.launches, b.launches);
    field("totalInsns", a.totalInsns(), b.totalInsns());
    field("issueCycles", a.issueCycles, b.issueCycles);
    field("smCycles", a.smCycles, b.smCycles);
    field("l1Accesses", a.l1Accesses, b.l1Accesses);
    field("l1Misses", a.l1Misses, b.l1Misses);
    field("l2Accesses", a.l2Accesses, b.l2Accesses);
    field("l2Misses", a.l2Misses, b.l2Misses);
    field("dramServed", a.dramServed, b.dramServed);
    field("dramRowHits", a.dramRowHits, b.dramRowHits);
    field("dramPinBusy", a.dramPinBusy, b.dramPinBusy);
    field("dramActive", a.dramActive, b.dramActive);
    field("nocPackets", a.nocPackets, b.nocPackets);
    field("nocFlits", a.nocFlits, b.nocFlits);
    field("nocLatencySum", a.nocLatencySum, b.nocLatencySum);
    for (std::size_t i = 0; i < a.insnByKind.size(); ++i)
        field("insnByKind", a.insnByKind[i], b.insnByKind[i]);
    for (std::size_t i = 0; i < a.memBySpace.size(); ++i)
        field("memBySpace", a.memBySpace[i], b.memBySpace[i]);
    if (!(a.warpOcc == b.warpOcc))
        os << "  warpOcc histogram differs\n";
    if (!(a.stalls == b.stalls)) {
        os << "  stall histogram differs:\n";
        for (std::size_t r = 0;
             r < std::size_t(sim::StallReason::NumReasons); ++r) {
            if (a.stalls.count(r) != b.stalls.count(r))
                os << "    " << toString(sim::StallReason(r)) << ": "
                   << a.stalls.count(r) << " vs " << b.stalls.count(r)
                   << "\n";
        }
    }
    const std::string diff = os.str();
    return diff.empty() ? "  (no scalar field differs)\n" : diff;
}

/** Every deterministic RunRecord field (host wall times excluded). */
void
expectRecordsIdentical(const core::RunRecord &ref,
                       const core::RunRecord &ff)
{
    EXPECT_EQ(ff.app, ref.app);
    EXPECT_EQ(ff.cdp, ref.cdp);
    EXPECT_EQ(ff.verified, ref.verified);
    EXPECT_EQ(ff.kernelCycles, ref.kernelCycles);
    EXPECT_EQ(ff.totalCycles, ref.totalCycles);
    EXPECT_EQ(ff.gpuSeconds, ref.gpuSeconds);
    EXPECT_EQ(ff.kernelInvocations, ref.kernelInvocations);
    EXPECT_EQ(ff.pciTransactions, ref.pciTransactions);
    EXPECT_EQ(ff.profiledKernelCycles, ref.profiledKernelCycles);
    EXPECT_EQ(ff.profiledPciCycles, ref.profiledPciCycles);
    EXPECT_EQ(ff.pciBytes, ref.pciBytes);
    EXPECT_EQ(ff.kernelsByName, ref.kernelsByName);
    EXPECT_TRUE(ff.stats == ref.stats)
        << "SimStats diverge (reference vs fast-forward):\n"
        << describeDiff(ref.stats, ff.stats);
}

struct EngineCase
{
    std::string app;
    bool cdp;
};

std::string
caseName(const ::testing::TestParamInfo<EngineCase> &info)
{
    return info.param.app + (info.param.cdp ? "_CDP" : "");
}

std::vector<EngineCase>
allCases()
{
    std::vector<EngineCase> cases;
    for (const std::string &app : core::appNames()) {
        cases.push_back({app, false});
        cases.push_back({app, true});
    }
    return cases;
}

core::RunConfig
tinyConfig(bool cdp, int threads = 1)
{
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    config.options.cdp = cdp;
    config.system.sim.threads = threads;
    return config;
}

class EngineEquivalenceTest : public ::testing::TestWithParam<EngineCase>
{
};

// The load-bearing guarantee of docs/PARALLEL_ENGINE.md: fast-forward
// is an execution strategy, not a model change. Every app, both
// variants, serial and parallel lanes.
TEST_P(EngineEquivalenceTest, FastForwardMatchesPerCycleLoop)
{
    for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE("sim.threads=" + std::to_string(threads));
        const core::RunConfig config =
            tinyConfig(GetParam().cdp, threads);

        core::RunRecord reference;
        {
            ScopedNoFastForward off;
            reference = core::runApp(GetParam().app, config);
        }
        ASSERT_TRUE(reference.verified) << reference.detail;

        const core::RunRecord ff = core::runApp(GetParam().app, config);
        expectRecordsIdentical(reference, ff);
    }
}

// ---- Randomized-config fuzz ----------------------------------------

/** Deterministic split-mix generator so failures name their seed. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t pick(std::uint64_t bound) { return next() % bound; }

  private:
    std::uint64_t state_;
};

/** Draw a valid timing configuration that stresses every subsystem
 *  the fast-forward path models (schedulers, DRAM, NoC, caches). */
SystemConfig
fuzzedSystem(Rng &rng)
{
    SystemConfig sys;
    sys.gpu.warpSched = static_cast<WarpSchedPolicy>(rng.pick(4));
    sys.gpu.memSched = static_cast<MemSchedPolicy>(rng.pick(3));
    sys.noc.topology = static_cast<NocTopology>(rng.pick(4));

    static const int cores[] = {4, 16, 30, 78};
    static const int partitions[] = {2, 4, 8};
    static const int issue[] = {1, 2, 4};
    sys.gpu.numCores = cores[rng.pick(4)];
    sys.gpu.numMemPartitions = partitions[rng.pick(3)];
    sys.gpu.issueWidth = issue[rng.pick(3)];
    if (rng.pick(4) == 0)
        sys.gpu.l1SizeBytes = 0;  // L1 disabled
    if (rng.pick(8) == 0)
        sys.gpu.perfectMemory = true;
    sys.sim.threads = rng.pick(2) ? 2 : 1;
    sys.validate();
    return sys;
}

TEST_P(EngineEquivalenceTest, FuzzedConfigsStayEquivalent)
{
    for (const std::uint64_t seed : {1u, 2u}) {
        // Key the draw on the case so configurations differ per app.
        Rng rng((std::uint64_t(std::hash<std::string>{}(GetParam().app))
                 << 2) ^ (GetParam().cdp ? 2 : 0) ^ seed);
        core::RunConfig config = tinyConfig(GetParam().cdp);
        config.system = fuzzedSystem(rng);
        SCOPED_TRACE("seed=" + std::to_string(seed) + " sched=" +
                     toString(config.system.gpu.warpSched) + "/" +
                     toString(config.system.gpu.memSched) + " noc=" +
                     toString(config.system.noc.topology) + " cores=" +
                     std::to_string(config.system.gpu.numCores) +
                     " parts=" +
                     std::to_string(config.system.gpu.numMemPartitions) +
                     " threads=" +
                     std::to_string(config.system.sim.threads));

        core::RunRecord reference;
        {
            ScopedNoFastForward off;
            reference = core::runApp(GetParam().app, config);
        }
        ASSERT_TRUE(reference.verified) << reference.detail;

        const core::RunRecord ff = core::runApp(GetParam().app, config);
        expectRecordsIdentical(reference, ff);
    }
}

INSTANTIATE_TEST_SUITE_P(AllApps, EngineEquivalenceTest,
                         ::testing::ValuesIn(allCases()), caseName);

// The batched DRAM window advance is most at risk on memory-bound
// apps, where the fast-forward path jumps partitions across long busy
// windows: pin every scheduler's replay order against every line size
// (line size changes both the trace and dataCyclesPerLine), with the
// remaining timing knobs fuzzed per combination.
TEST(EngineMemSchedGrid, MemBoundAppsStayEquivalentAcrossLineSizes)
{
    for (const std::string app : {"NvB", "CLUSTER"}) {
        for (const MemSchedPolicy sched :
             {MemSchedPolicy::Fifo, MemSchedPolicy::FrFcfs,
              MemSchedPolicy::OoO128}) {
            for (const std::uint32_t line_bytes : {64u, 128u, 256u}) {
                Rng rng((std::uint64_t(std::hash<std::string>{}(app))
                         << 8) ^ (std::uint64_t(sched) << 4) ^ line_bytes);
                core::RunConfig config = tinyConfig(false);
                config.system = fuzzedSystem(rng);
                config.system.gpu.memSched = sched;
                config.system.gpu.lineBytes = line_bytes;
                config.system.gpu.perfectMemory = false;  // Exercise DRAM
                config.system.validate();
                SCOPED_TRACE(app + " sched=" +
                             toString(config.system.gpu.memSched) +
                             " line=" + std::to_string(line_bytes) +
                             " parts=" +
                             std::to_string(
                                 config.system.gpu.numMemPartitions));

                core::RunRecord reference;
                {
                    ScopedNoFastForward off;
                    reference = core::runApp(app, config);
                }
                ASSERT_TRUE(reference.verified) << reference.detail;

                const core::RunRecord ff = core::runApp(app, config);
                expectRecordsIdentical(reference, ff);
            }
        }
    }
}

// ---- Profiler / checker seam ---------------------------------------

// An attached timing observer forces single-cycle stepping, so a
// profiled run under the default (fast-forward-enabled) configuration
// must still reproduce a detached fast-forwarded run byte for byte.
TEST(EngineObserverSeam, AttachedRunMatchesDetachedRecord)
{
    for (const bool cdp : {false, true}) {
        SCOPED_TRACE(cdp ? "CDP" : "base");
        const profile::ProfileRun attached =
            profile::profileApp("NW", tinyConfig(cdp), {});
        const core::RunRecord detached =
            core::runApp("NW", tinyConfig(cdp));
        expectRecordsIdentical(detached, attached.record);
    }
}

// The interval rows a recorder observes must not depend on whether
// the surrounding configuration would fast-forward when detached:
// both runs below step per cycle, and their sampled deltas must agree
// window for window.
TEST(EngineObserverSeam, IntervalDeltasUnchangedByFastForwardConfig)
{
    for (const bool cdp : {false, true}) {
        SCOPED_TRACE(cdp ? "CDP" : "base");
        profile::ProfileRun reference;
        {
            ScopedNoFastForward off;
            reference = profile::profileApp("SW", tinyConfig(cdp), {});
        }
        const profile::ProfileRun ff =
            profile::profileApp("SW", tinyConfig(cdp), {});

        const auto &a = reference.timeline.intervals;
        const auto &b = ff.timeline.intervals;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            SCOPED_TRACE("interval " + std::to_string(i));
            EXPECT_EQ(a[i].start, b[i].start);
            EXPECT_EQ(a[i].end, b[i].end);
            EXPECT_EQ(a[i].sm, b[i].sm);
            EXPECT_EQ(a[i].partitions, b[i].partitions);
            EXPECT_EQ(a[i].noc, b[i].noc);
        }
        EXPECT_EQ(reference.timeline.endCycle, ff.timeline.endCycle);
    }
}

// ---- Tick contract --------------------------------------------------

// Fast-forward must only ever skip work: the cycle loop may not run
// more iterations than simulated cycles, and the SM tick total may
// not exceed the cycles x cores slot budget. The reference loop, by
// construction, fills that budget exactly.
TEST(EngineTickContract, FastForwardNeverSimulatesMoreThanCycles)
{
    const core::RunConfig config = tinyConfig(true);
    const int cores = config.system.gpu.numCores;

    rt::Device device(config.system);
    auto app = core::makeApp("SW");
    const kernels::AppRunResult result =
        app->run(device, config.options);
    ASSERT_TRUE(result.verified) << result.detail;

    const sim::EngineStats stats = device.engineStats();
    EXPECT_TRUE(stats.fastForward);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_LE(stats.iterations, stats.cycles);
    EXPECT_LE(stats.smTicks,
              stats.cycles * std::uint64_t(cores));
    const double skipped = stats.skippedSmTickFraction(cores);
    EXPECT_GE(skipped, 0.0);
    EXPECT_LE(skipped, 1.0);
    ::testing::Test::RecordProperty("skipped_sm_tick_fraction",
                                    std::to_string(skipped));

    rt::Device reference(config.system);
    {
        ScopedNoFastForward off;
        auto ref_app = core::makeApp("SW");
        ASSERT_TRUE(ref_app->run(reference, config.options).verified);
    }
    const sim::EngineStats ref_stats = reference.engineStats();
    EXPECT_FALSE(ref_stats.fastForward);
    EXPECT_EQ(ref_stats.cycles, stats.cycles);
    // Wall cycles include launch-overhead advances taken outside the
    // cycle loop, so iterations <= cycles even for the reference loop;
    // what the reference loop cannot do is skip an SM slot.
    EXPECT_LE(ref_stats.iterations, ref_stats.cycles);
    EXPECT_EQ(ref_stats.smTicks,
              ref_stats.iterations * std::uint64_t(cores));
    // The whole point: strictly fewer iterations on a stall-heavy app.
    EXPECT_LT(stats.iterations, ref_stats.iterations);
}

// Same contract on a memory-bound app at small scale: with the DRAM
// window advance batched, the fast-forward loop's iteration count is
// set by completion events and must land strictly below the reference
// loop's even when DRAM is busy nearly every cycle.
TEST(EngineTickContract, MemoryBoundFastForwardIteratesLessAtSmallScale)
{
    core::RunConfig config = tinyConfig(false);
    config.options.scale = kernels::InputScale::Small;

    rt::Device device(config.system);
    auto app = core::makeApp("NvB");
    ASSERT_TRUE(app->run(device, config.options).verified);
    const sim::EngineStats stats = device.engineStats();
    EXPECT_TRUE(stats.fastForward);
    EXPECT_LE(stats.iterations, stats.cycles);

    rt::Device reference(config.system);
    {
        ScopedNoFastForward off;
        auto ref_app = core::makeApp("NvB");
        ASSERT_TRUE(ref_app->run(reference, config.options).verified);
    }
    const sim::EngineStats ref_stats = reference.engineStats();
    EXPECT_EQ(ref_stats.cycles, stats.cycles);
    EXPECT_LT(stats.iterations, ref_stats.iterations);
}

// ---- Op-stream interning -------------------------------------------

/** Wrap a lambda as a kernel body. */
template <typename Fn>
class LambdaKernel : public sim::KernelBody
{
  public:
    explicit LambdaKernel(Fn fn) : fn_(std::move(fn)) {}

    void
    runPhase(sim::WarpCtx &w, int phase) override
    {
        fn_(w, phase);
    }

  private:
    Fn fn_;
};

// Warps of a uniform grid emit identical op streams; one emission
// pass must collapse them onto shared canonical vectors.
TEST(OpStreamInterning, UniformGridSharesCanonicalStreams)
{
    rt::Device device;
    sim::LaunchSpec spec;
    spec.name = "uniform";
    spec.grid = {8, 1, 1};
    spec.cta = {64, 1, 1};
    auto body = [](sim::WarpCtx &w, int) {
        w.emitInt(5);
        w.emitFp(3);
    };
    spec.body =
        std::make_shared<LambdaKernel<decltype(body)>>(std::move(body));

    const sim::KernelTrace trace = device.gpu().emitGrid(spec);
    ASSERT_EQ(trace.ctas.size(), 8u);
    ASSERT_EQ(trace.ctas[0].warps.size(), 2u);
    const sim::OpStream &first = trace.ctas[0].warps[0].ops;
    for (const sim::CtaTrace &cta : trace.ctas)
        for (const sim::WarpTrace &warp : cta.warps) {
            EXPECT_TRUE(warp.ops.sharedWith(first));
            EXPECT_TRUE(warp.ops == first);
        }

    const sim::OpStreamInterner &interner = device.gpu().opInterner();
    EXPECT_EQ(interner.streamsSeen(), 16u);
    EXPECT_EQ(interner.streamsShared(), 15u);
    EXPECT_EQ(interner.opsDeduped(), 15u * first.size());
}

// Copy-on-write: appending to one handle of a shared stream must not
// disturb the canonical copy other handles still see.
TEST(OpStreamInterning, MutationCopiesSharedStream)
{
    sim::OpStreamInterner interner;
    sim::ScopedOpStreamInterner scope(interner);

    sim::TraceOp op;
    op.kind = sim::OpKind::IntAlu;

    sim::WarpTrace a;
    a.append(op);
    a.ops.intern();
    sim::WarpTrace b;
    b.append(op);
    b.ops.intern();
    ASSERT_TRUE(a.ops.sharedWith(b.ops));

    sim::TraceOp store;
    store.kind = sim::OpKind::Store;
    b.append(store);
    EXPECT_FALSE(a.ops.sharedWith(b.ops));
    EXPECT_EQ(a.ops.size(), 1u);
    EXPECT_EQ(b.ops.size(), 2u);
    EXPECT_EQ(a.ops.back().kind, sim::OpKind::IntAlu);
    EXPECT_EQ(b.ops.back().kind, sim::OpKind::Store);
}

} // namespace
