/**
 * @file
 * Integration tests over the ten benchmark applications: every app is
 * run at Tiny scale in non-CDP and CDP form; its device results must
 * match the CPU reference, and the simulator's conservation
 * invariants must hold on the collected statistics.
 */

#include <gtest/gtest.h>

#include "core/report.hh"
#include "core/suite.hh"

namespace
{

using namespace ggpu;

struct AppCase
{
    std::string app;
    bool cdp;
};

std::string
caseName(const ::testing::TestParamInfo<AppCase> &info)
{
    return info.param.app + (info.param.cdp ? "_CDP" : "");
}

class AppTest : public ::testing::TestWithParam<AppCase>
{
  protected:
    core::RunRecord
    runTiny()
    {
        core::RunConfig config;
        config.options.scale = kernels::InputScale::Tiny;
        config.options.cdp = GetParam().cdp;
        return core::runApp(GetParam().app, config);
    }
};

TEST_P(AppTest, DeviceResultsMatchCpuReference)
{
    const core::RunRecord record = runTiny();
    EXPECT_TRUE(record.verified) << record.detail;
}

TEST_P(AppTest, ConservationInvariantsHold)
{
    const core::RunRecord record = runTiny();
    const auto &stats = record.stats;

    // Every SM cycle is either an issue cycle or a classified stall.
    EXPECT_EQ(stats.issueCycles + stats.stalls.total(),
              stats.smCycles);

    // Work happened and is accounted.
    EXPECT_GT(stats.totalInsns(), 0u);
    EXPECT_GT(stats.gpuCycles, 0u);
    EXPECT_GT(stats.warpOcc.total(), 0u);
    EXPECT_GT(stats.ipc(), 0.0);

    // Miss counts can never exceed accesses.
    EXPECT_LE(stats.l1Misses, stats.l1Accesses);
    EXPECT_LE(stats.l2Misses, stats.l2Accesses);

    // Each L2 access was caused by an L1 miss or an off-core store.
    const std::uint64_t stores =
        stats.insnByKind[std::size_t(sim::OpKind::Store)];
    EXPECT_LE(stats.l2Accesses, stats.l1Misses + stores * warpSize);

    // DRAM pins cannot be busier than the controller was active.
    EXPECT_LE(stats.dramPinBusy, stats.dramActive);
}

TEST_P(AppTest, ProfilerSeesLaunchesAndTransfers)
{
    const core::RunRecord record = runTiny();
    EXPECT_GT(record.kernelInvocations, 0u);
    EXPECT_GT(record.pciTransactions, 0u);
    EXPECT_GT(record.kernelCycles, 0u);
    EXPECT_GE(record.totalCycles, record.kernelCycles);
}

TEST_P(AppTest, CdpVariantsLaunchChildGrids)
{
    const core::RunRecord record = runTiny();
    const std::uint64_t children =
        record.stats.insnByKind[std::size_t(sim::OpKind::ChildLaunch)];
    if (GetParam().cdp)
        EXPECT_GT(children, 0u);
    else
        EXPECT_EQ(children, 0u);
}

std::vector<AppCase>
allCases()
{
    std::vector<AppCase> cases;
    for (const auto &app : core::appNames()) {
        cases.push_back({app, false});
        cases.push_back({app, true});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Suite, AppTest,
                         ::testing::ValuesIn(allCases()), caseName);

// ---- cross-app behaviour properties -----------------------------

TEST(AppBehaviour, SuiteOrderAndFactories)
{
    EXPECT_EQ(core::appNames().size(), 10u);
    for (const auto &name : core::appNames()) {
        auto app = core::makeApp(name);
        ASSERT_NE(app, nullptr);
        EXPECT_EQ(app->name(), name);
    }
    EXPECT_THROW(core::makeApp("BOGUS"), FatalError);
}

TEST(AppBehaviour, DeterministicAcrossRuns)
{
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    const auto a = core::runApp("SW", config);
    const auto b = core::runApp("SW", config);
    EXPECT_EQ(a.kernelCycles, b.kernelCycles);
    EXPECT_EQ(a.stats.totalInsns(), b.stats.totalInsns());
    EXPECT_EQ(a.stats.l1Misses, b.stats.l1Misses);
}

TEST(AppBehaviour, SeedChangesDataNotValidity)
{
    // CLUSTER has data-dependent control flow, so a different seed
    // must change the timing; any seed must still verify.
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    config.options.seed = 123;
    const auto a = core::runApp("CLUSTER", config);
    config.options.seed = 456;
    const auto b = core::runApp("CLUSTER", config);
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    EXPECT_NE(a.kernelCycles, b.kernelCycles);
}

TEST(AppBehaviour, PerfectMemoryNeverSlower)
{
    for (const std::string app : {"GKSW", "NvB"}) {
        core::RunConfig base;
        base.options.scale = kernels::InputScale::Tiny;
        core::RunConfig perfect = base;
        perfect.system.gpu.perfectMemory = true;
        const auto slow = core::runApp(app, base);
        const auto fast = core::runApp(app, perfect);
        EXPECT_LE(fast.kernelCycles, slow.kernelCycles) << app;
    }
}

TEST(AppBehaviour, SharedMemoryVariantIsFaster)
{
    for (const std::string app : {"NW", "PairHMM"}) {
        core::RunConfig with;
        with.options.scale = kernels::InputScale::Tiny;
        core::RunConfig without = with;
        without.options.sharedMem = false;
        const auto shared = core::runApp(app, with);
        const auto global = core::runApp(app, without);
        EXPECT_TRUE(global.verified) << app;
        EXPECT_LT(shared.kernelCycles, global.kernelCycles) << app;
    }
}

TEST(AppBehaviour, SwAndNwAreComputeDominatedByLaunchCounts)
{
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    // NW launches a kernel per diagonal block; SW a kernel per chunk.
    const auto nw = core::runApp("NW", config);
    EXPECT_GT(nw.kernelInvocations, nw.pciTransactions);
    const auto gasal = core::runApp("GL", config);
    EXPECT_GT(gasal.pciTransactions, gasal.kernelInvocations);
}

TEST(AppBehaviour, GasalKernelsAreLocalMemoryDominant)
{
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    for (const std::string app : {"GG", "GL", "GSG"}) {
        const auto record = core::runApp(app, config);
        const double local =
            core::memFraction(record, sim::MemSpace::Local);
        EXPECT_GT(local, core::memFraction(record,
                                           sim::MemSpace::Shared))
            << app;
        EXPECT_GT(local, 0.3) << app;
    }
}

TEST(AppBehaviour, NwAndPairHmmAreSharedMemoryDominant)
{
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    for (const std::string app : {"NW", "PairHMM"}) {
        const auto record = core::runApp(app, config);
        EXPECT_GT(core::memFraction(record, sim::MemSpace::Shared),
                  0.5)
            << app;
    }
}

TEST(AppBehaviour, PairHmmIsFloatingPointHeavy)
{
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    const auto hmm = core::runApp("PairHMM", config);
    const auto sw = core::runApp("SW", config);
    EXPECT_GT(core::insnFraction(hmm, sim::OpKind::FpAlu),
              core::insnFraction(sw, sim::OpKind::FpAlu));
}

TEST(AppBehaviour, ClusterIsDivergenceBound)
{
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    const auto record = core::runApp("CLUSTER", config);
    // Fig 10: CLUSTER's issued warps are mostly nearly-empty (W1-8),
    // unlike e.g. GG whose warps run nearly full.
    const double sparse = core::occupancyFraction(record, 1, 8);
    EXPECT_GT(sparse, core::occupancyFraction(record, 29, 32));
    const auto gg = core::runApp("GG", config);
    EXPECT_GT(core::occupancyFraction(gg, 29, 32), sparse);
}

TEST(AppBehaviour, NvbStallsOnKernelSetup)
{
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    const auto record = core::runApp("NvB", config);
    // Fig 5: functional-done dominates NvB far more than a
    // compute-bound app like SW.
    const double fd =
        core::stallFraction(record, sim::StallReason::FunctionalDone);
    EXPECT_GT(fd, 0.3);
    const auto sw = core::runApp("SW", config);
    EXPECT_GT(fd, core::stallFraction(
                      sw, sim::StallReason::FunctionalDone));
}

} // namespace
