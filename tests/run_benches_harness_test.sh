#!/bin/sh
# Harness self-test: run_benches.sh must surface a crashing bench
# binary (FAILED <name> line, non-zero exit) instead of silently
# leaving an empty section, while still running the remaining
# binaries. Exercised through the GGPU_BENCH_DIR override with a fake
# bench directory containing one passing and one failing "binary".
#
# Usage: run_benches_harness_test.sh <path-to-run_benches.sh>
set -u

script=${1:?usage: run_benches_harness_test.sh <run_benches.sh>}
tmp=$(mktemp -d) || exit 1
trap 'rm -rf "$tmp"' EXIT

fail() {
    echo "FAIL: $1" >&2
    echo "--- harness log ---" >&2
    cat "$tmp/log" >&2 2>/dev/null
    echo "--- bench output ---" >&2
    cat "$tmp/out.txt" >&2 2>/dev/null
    exit 1
}

mkdir -p "$tmp/bin"
cat > "$tmp/bin/bench_aa_ok" <<'EOF'
#!/bin/sh
echo fake table output
EOF
cat > "$tmp/bin/bench_bb_boom" <<'EOF'
#!/bin/sh
echo about to crash
exit 3
EOF
cat > "$tmp/bin/bench_cc_after" <<'EOF'
#!/bin/sh
echo still runs after the crash
EOF
chmod +x "$tmp/bin"/bench_*

if GGPU_BENCH_DIR="$tmp/bin" "$script" "$tmp/out.txt" \
        > "$tmp/log" 2>&1; then
    fail "expected non-zero exit when a bench binary fails"
fi

grep -q "FAILED bench_bb_boom" "$tmp/log" ||
    fail "missing 'FAILED bench_bb_boom' diagnostic"
grep -q "fake table output" "$tmp/out.txt" ||
    fail "passing bench output missing from the output file"
grep -q "still runs after the crash" "$tmp/out.txt" ||
    fail "benches after the failing one were not run"
grep -q "ALL_BENCHES_DONE" "$tmp/out.txt" &&
    fail "ALL_BENCHES_DONE must not be stamped on a failed sweep"

# The all-pass path still exits 0 and stamps the completion marker.
rm "$tmp/bin/bench_bb_boom"
GGPU_BENCH_DIR="$tmp/bin" "$script" "$tmp/out.txt" \
        > "$tmp/log" 2>&1 ||
    fail "expected exit 0 when every bench binary passes"
grep -q "ALL_BENCHES_DONE" "$tmp/out.txt" ||
    fail "missing ALL_BENCHES_DONE on a clean sweep"

echo "PASS"
