/**
 * @file
 * Quickstart: align two DNA sequences with the CPU reference
 * aligners, then run the Smith-Waterman benchmark application on the
 * simulated GPU and show the profile a real nvprof run would give.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/report.hh"
#include "core/suite.hh"
#include "genomics/align/nw.hh"
#include "genomics/align/sw.hh"

int
main()
{
    using namespace ggpu;

    // ---- 1. Pairwise alignment on the CPU -------------------------
    const std::string a = "ACGTTGACCGTAAGGCTTACGATGC";
    const std::string b = "ACGTTCACCGTAGGCTTACGTTGC";
    const genomics::Scoring scoring;

    const genomics::NwAlignment global =
        genomics::nwAlign(a, b, scoring);
    std::cout << "Global alignment (score " << global.score << "):\n  "
              << global.alignedA << "\n  " << global.alignedB << "\n";

    const genomics::SwAlignment local =
        genomics::swAlign(a, b, scoring);
    std::cout << "Best local alignment (score " << local.score
              << ") covers a[" << local.startA << ", " << local.endA
              << ")\n\n";

    // ---- 2. The same algorithm as a GPU benchmark ------------------
    core::RunConfig config;  // RTX 3070-like defaults (Table I)
    config.options.scale = kernels::InputScale::Tiny;
    const core::RunRecord record = core::runApp("SW", config);

    std::cout << "Simulated GPU run of the SW benchmark ("
              << record.detail << ")\n"
              << "  verified against CPU reference: "
              << (record.verified ? "yes" : "NO") << "\n"
              << "  kernel launches: " << record.kernelInvocations
              << ", PCI transfers: " << record.pciTransactions << "\n"
              << "  kernel cycles: " << record.kernelCycles
              << " (IPC " << core::Table::num(record.stats.ipc(), 2)
              << ")\n"
              << "  L1 miss rate: "
              << core::Table::percent(record.stats.l1MissRate())
              << ", DRAM utilization: "
              << core::Table::percent(record.stats.dramUtilization())
              << "\n";
    return record.verified ? 0 : 1;
}
