/**
 * @file
 * Characterization front end (a miniature Accel-Sim driver): run any
 * of the ten benchmark applications under a chosen configuration and
 * print the full microarchitectural report — stall breakdown,
 * instruction and memory mixes, warp occupancy, cache miss rates,
 * DRAM and NoC behaviour.
 *
 * Usage: characterize [app] [--cdp] [--scale tiny|small|medium]
 *        [--sched lrr|gto|old|2lv] [--topo xbar|mesh|fattree|butterfly]
 */

#include <cstring>
#include <iostream>

#include "common/log.hh"
#include "core/report.hh"
#include "core/suite.hh"

int
main(int argc, char **argv)
{
    using namespace ggpu;

    std::string app = "SW";
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after ", arg);
            return argv[++i];
        };
        if (arg == "--cdp") {
            config.options.cdp = true;
        } else if (arg == "--no-shared") {
            config.options.sharedMem = false;
        } else if (arg == "--scale") {
            const std::string v = next();
            config.options.scale = v == "tiny"
                ? kernels::InputScale::Tiny
                : v == "medium" ? kernels::InputScale::Medium
                                : kernels::InputScale::Small;
        } else if (arg == "--sched") {
            const std::string v = next();
            config.system.gpu.warpSched = v == "gto"
                ? WarpSchedPolicy::Gto
                : v == "old" ? WarpSchedPolicy::Oldest
                : v == "2lv" ? WarpSchedPolicy::TwoLevel
                             : WarpSchedPolicy::Lrr;
        } else if (arg == "--topo") {
            const std::string v = next();
            config.system.noc.topology = v == "mesh"
                ? NocTopology::Mesh
                : v == "fattree" ? NocTopology::FatTree
                : v == "butterfly" ? NocTopology::Butterfly
                                   : NocTopology::Xbar;
        } else if (arg[0] != '-') {
            app = arg;
        } else {
            fatal("unknown option ", arg);
        }
    }

    const core::RunRecord r = core::runApp(app, config);
    std::cout << "=== " << r.label() << " (" << r.detail << ") ===\n"
              << "verified: " << (r.verified ? "yes" : "NO") << "\n"
              << "kernel cycles: " << r.kernelCycles << "  (IPC "
              << core::Table::num(r.stats.ipc(), 2) << ")\n"
              << "launches: " << r.kernelInvocations
              << "  PCI transfers: " << r.pciTransactions << "\n\n";

    core::Table stalls({"Stall reason", "Fraction"});
    for (int s = 1; s < int(sim::StallReason::NumReasons); ++s) {
        stalls.addRow({sim::toString(sim::StallReason(s)),
                       core::Table::percent(core::stallFraction(
                           r, sim::StallReason(s)))});
    }
    stalls.print(std::cout);

    core::Table mixes({"Class", "Instructions", "Memory space",
                       "Accesses"});
    const char *kinds[] = {"int", "fp", "sfu", "load", "store",
                           "branch"};
    const sim::OpKind kind_ids[] = {
        sim::OpKind::IntAlu, sim::OpKind::FpAlu, sim::OpKind::Sfu,
        sim::OpKind::Load, sim::OpKind::Store, sim::OpKind::Branch};
    const char *spaces[] = {"global", "shared", "local",
                            "const", "tex", "param"};
    const sim::MemSpace space_ids[] = {
        sim::MemSpace::Global, sim::MemSpace::Shared,
        sim::MemSpace::Local, sim::MemSpace::Const, sim::MemSpace::Tex,
        sim::MemSpace::Param};
    for (int i = 0; i < 6; ++i) {
        mixes.addRow({kinds[i],
                      core::Table::percent(
                          core::insnFraction(r, kind_ids[i])),
                      spaces[i],
                      core::Table::percent(
                          core::memFraction(r, space_ids[i]))});
    }
    std::cout << "\n";
    mixes.print(std::cout);

    std::cout << "\nL1 miss rate:  "
              << core::Table::percent(r.stats.l1MissRate())
              << "\nL2 miss rate:  "
              << core::Table::percent(r.stats.l2MissRate())
              << "\nDRAM efficiency: "
              << core::Table::percent(r.stats.dramEfficiency())
              << "\nDRAM utilization: "
              << core::Table::percent(r.stats.dramUtilization())
              << "\nNoC packets: " << r.stats.nocPackets
              << " (avg latency "
              << core::Table::num(
                     ratio(r.stats.nocLatencySum, r.stats.nocPackets),
                     1)
              << " cycles)\n";

    core::Table occ({"Occupancy", "Fraction"});
    for (int lo = 1; lo <= 29; lo += 4) {
        occ.addRow({"W" + std::to_string(lo) + "-" +
                        std::to_string(lo + 3),
                    core::Table::percent(
                        core::occupancyFraction(r, lo, lo + 3))});
    }
    std::cout << "\n";
    occ.print(std::cout);
    return r.verified ? 0 : 1;
}
