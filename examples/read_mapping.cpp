/**
 * @file
 * Read-mapping pipeline: generate a synthetic reference + error-laden
 * reads (the hg19/SRR493095 stand-in), build an FM-index, map the
 * reads with the seed-and-extend CPU mapper, and cross-check the
 * NvBowtie-style GPU benchmark against it.
 *
 * Build & run:  ./build/examples/read_mapping
 */

#include <iostream>

#include "common/random.hh"
#include "core/suite.hh"
#include "genomics/datagen.hh"
#include "genomics/fasta.hh"
#include "genomics/index/fm_index.hh"
#include "genomics/map/read_mapper.hh"

int
main()
{
    using namespace ggpu;
    Rng rng(2024);

    // ---- 1. Data + index ------------------------------------------
    const auto set = genomics::makeReadSet(rng, /*ref_len=*/20000,
                                           /*count=*/200,
                                           /*read_len=*/72,
                                           /*error_rate=*/0.01);
    std::cout << "Reference: " << set.reference.size()
              << " bp, reads: " << set.reads.size() << " x "
              << set.reads[0].size() << " bp\n";
    std::cout << "FASTQ head:\n"
              << genomics::writeFastq(
                     {set.reads.begin(), set.reads.begin() + 2});

    const genomics::FmIndex index(set.reference);

    // ---- 2. CPU mapping --------------------------------------------
    const auto results =
        genomics::mapReads(index, set.reference, set.reads);
    std::size_t mapped = 0, correct = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        mapped += results[i].mapped;
        correct += results[i].mapped &&
                   results[i].position == set.truePos[i];
    }
    std::cout << "CPU mapper: " << mapped << "/" << results.size()
              << " mapped, " << correct << " at the true position\n";

    // ---- 3. The same pipeline as the NvB GPU benchmark -------------
    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    const core::RunRecord record = core::runApp("NvB", config);
    std::cout << "GPU NvB benchmark: " << record.detail
              << " (verified: " << (record.verified ? "yes" : "NO")
              << ", " << record.kernelInvocations
              << " kernel launches)\n";
    return record.verified ? 0 : 1;
}
