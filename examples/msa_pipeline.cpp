/**
 * @file
 * Multiple-sequence-alignment pipeline: build a mutated sequence
 * family, run the center-star MSA on the CPU, print the alignment,
 * and run the STAR benchmark (the CPU/GPU co-running version) on the
 * simulated device.
 *
 * Build & run:  ./build/examples/msa_pipeline
 */

#include <iostream>

#include "common/random.hh"
#include "core/report.hh"
#include "core/suite.hh"
#include "genomics/datagen.hh"
#include "genomics/msa/center_star.hh"

int
main()
{
    using namespace ggpu;
    Rng rng(7);

    const auto family = genomics::makeFamilies(
        rng, /*families=*/1, /*members=*/6, /*length=*/48,
        /*divergence=*/0.08, /*length_jitter=*/0.0);
    std::vector<std::string> seqs;
    for (const auto &seq : family)
        seqs.push_back(seq.data);

    const genomics::MsaResult msa =
        genomics::centerStarAlign(seqs, genomics::Scoring{});
    std::cout << "Center sequence: index " << msa.centerIndex
              << ", sum-of-pairs score " << msa.sumOfPairsScore
              << "\n\nAlignment:\n";
    for (std::size_t i = 0; i < msa.rows.size(); ++i) {
        std::cout << (i == msa.centerIndex ? "*" : " ") << " "
                  << msa.rows[i] << "\n";
    }

    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    const core::RunRecord gpu = core::runApp("STAR", config);
    config.options.cdp = true;
    const core::RunRecord cdp = core::runApp("STAR", config);
    std::cout << "\nSTAR on the simulated GPU: " << gpu.kernelCycles
              << " cycles; with CUDA Dynamic Parallelism: "
              << cdp.kernelCycles << " cycles ("
              << core::Table::num(double(gpu.kernelCycles) /
                                      double(cdp.kernelCycles),
                                  2)
              << "x, the Fig 2 effect)\n";
    return gpu.verified && cdp.verified ? 0 : 1;
}
