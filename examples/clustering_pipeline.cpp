/**
 * @file
 * Clustering pipeline: generate families of related sequences, write
 * them to FASTA, cluster them with the greedy incremental algorithm
 * (nGIA/CD-HIT style), and run the CLUSTER GPU benchmark.
 *
 * Build & run:  ./build/examples/clustering_pipeline
 */

#include <iostream>
#include <map>

#include "common/random.hh"
#include "core/suite.hh"
#include "genomics/cluster/greedy_cluster.hh"
#include "genomics/datagen.hh"
#include "genomics/fasta.hh"

int
main()
{
    using namespace ggpu;
    Rng rng(99);

    const auto seqs = genomics::makeFamilies(
        rng, /*families=*/5, /*members=*/8, /*length=*/120,
        /*divergence=*/0.02, /*length_jitter=*/0.1);
    std::cout << "Input: " << seqs.size()
              << " sequences in 5 hidden families\n";
    std::cout << genomics::writeFasta(
        {seqs.begin(), seqs.begin() + 1});

    genomics::ClusterParams params;
    params.identityThreshold = 0.85;
    const genomics::ClusterResult result =
        genomics::greedyCluster(seqs, params, genomics::Scoring{});

    std::map<int, int> sizes;
    for (int c : result.assignment)
        ++sizes[c];
    std::cout << "Clusters found: " << result.representatives.size()
              << " (word filter rejected " << result.filteredOut
              << " pairs; " << result.alignmentsPerformed
              << " alignments performed)\n";
    for (const auto &[cluster, count] : sizes) {
        std::cout << "  cluster " << cluster << ": " << count
                  << " members, representative "
                  << seqs[result.representatives[std::size_t(cluster)]]
                         .name
                  << "\n";
    }

    core::RunConfig config;
    config.options.scale = kernels::InputScale::Tiny;
    const core::RunRecord record = core::runApp("CLUSTER", config);
    std::cout << "GPU CLUSTER benchmark: " << record.detail
              << " (verified: " << (record.verified ? "yes" : "NO")
              << ")\n";
    return record.verified ? 0 : 1;
}
